// M/M/1 queueing delay model and a packet-level queue simulator.
//
// Section IV, eq. (13): the content delivery delay is modelled as
//   d_n(r) = r / (B_n - r),
// the mean sojourn time of an M/M/1 queue with offered load r and
// capacity B_n (up to the service-time scale), "usually used to model the
// queueing delay in wireless transmission".
//
// Mm1Simulator generates actual per-packet sojourn times (Poisson
// arrivals, exponential service) — this is how we regenerate Fig. 1b's
// RTT-vs-rate convexity from first principles instead of asserting it.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace cvr::net {

/// Analytic normalised M/M/1 delay (eq. 13). `rate` and `bandwidth` in
/// the same units (Mbps). Saturated or over-committed queues (rate >=
/// bandwidth) return kSaturatedDelay, a large finite penalty that keeps
/// objective arithmetic well-behaved.
inline constexpr double kSaturatedDelay = 1e3;

double mm1_delay(double rate, double bandwidth);

/// Mean sojourn time (ms) of an M/M/1 queue with Poisson packet arrivals
/// at `offered_mbps`, capacity `capacity_mbps`, packets of
/// `packet_bits` each: W = 1 / (mu - lambda).
double mm1_mean_sojourn_ms(double offered_mbps, double capacity_mbps,
                           double packet_bits = 12000.0);

/// Discrete-event single-server FIFO queue, exponential service.
class Mm1Simulator {
 public:
  struct Result {
    double mean_sojourn_ms = 0.0;
    double p95_sojourn_ms = 0.0;
    double max_sojourn_ms = 0.0;
    std::size_t samples = 0;
  };

  /// Simulates `packets` Poisson arrivals and returns sojourn statistics.
  /// Requires offered < capacity for a stable queue, but an unstable
  /// configuration still terminates (delays just grow with the horizon).
  static Result run(double offered_mbps, double capacity_mbps,
                    std::size_t packets, std::uint64_t seed,
                    double packet_bits = 12000.0);

  /// Raw sojourn samples (ms), for CDF-style reporting.
  static std::vector<double> sojourn_samples(double offered_mbps,
                                             double capacity_mbps,
                                             std::size_t packets,
                                             std::uint64_t seed,
                                             double packet_bits = 12000.0);
};

}  // namespace cvr::net
