// Wi-Fi contention channel model (docs/workloads.md).
//
// The legacy Router model (wireless_channel.h) treats the air link as a
// shaped pipe with AR(1) fading: fine for reproducing Figs. 7/8, but it
// has no notion of *contention* — k stations on one 802.11 BSS do not
// each get throttle_n of airtime; they split the medium, pay per-station
// MAC overhead that grows with the contender count, and lose goodput to
// MCS-dependent retransmissions and binary-exponential backoff
// ("Evaluating Wi-Fi Performance for VR Streaming: A Study on Realistic
// HEVC Video Traffic", PAPERS.md).
//
// Model, per slot:
//   * airtime shares: station i of k contenders gets
//       share(k) = (1 - overhead(k)) / k,
//     overhead(k) = min(max_overhead, contention_overhead * (k - 1)) —
//     shares sum to 1 - overhead(k) <= 1 and each station's share is
//     monotone-decreasing in k (property-pinned).
//   * PHY rate: an 802.11ac-like monotone MCS table (80 MHz, 1 SS).
//   * retries: per-transmission error probability
//       p(mcs) = min(0.5, base_error_rate * error_growth^mcs)
//     with a truncated-geometric retry chain of max_retries rounds;
//     goodput efficiency folds delivery probability, expected
//     transmissions, and retry airtime overhead together.
//   * backoff: a collided station defers for a deterministic capped
//     exponential number of slots with seeded multiplicative jitter —
//     the same pure-function shape as fleet::retry_delay_slots, keyed
//     by (seed, station, attempt) so the whole channel replays
//     bit-identically.
//
// The channel composes into net::Router behind its existing surface
// (per_user_capacity / aggregate_capacity / serve): with
// `enabled = false` (the default) no channel is constructed, no RNG
// stream is touched, and the Router is bit-identical to the legacy
// fading-only model (guard-tested).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace cvr::net {

struct WifiContentionConfig {
  /// Master switch. Off = the legacy fading-only Router, bit-identical.
  bool enabled = false;
  /// Per-station modulation-and-coding index, assigned station % pool.
  /// Valid MCS indices are 0..9 (802.11ac).
  std::vector<int> mcs_pool = {7, 5};
  /// Airtime lost to contention per *extra* contender (preambles,
  /// AIFS/backoff idle, RTS/CTS): overhead(k) = contention_overhead*(k-1).
  double contention_overhead = 0.06;
  /// Cap on the total contention overhead (the medium never goes fully
  /// idle even on a crowded BSS).
  double max_overhead = 0.35;
  /// Per-transmission error probability at MCS 0.
  double base_error_rate = 0.02;
  /// Multiplicative error growth per MCS step (denser constellations
  /// are more fragile at fixed SNR).
  double error_growth = 1.35;
  /// 802.11 retry limit: a frame is dropped after 1 + max_retries
  /// transmissions.
  std::size_t max_retries = 7;
  /// Extra airtime per expected retransmission (DIFS + contention-window
  /// idle relative to a data TX), folded into goodput efficiency.
  double retry_airtime_overhead = 0.5;
  /// Per-slot collision probability per *other* contender on the BSS.
  double collision_prob_per_station = 0.015;
  /// Cap on the per-slot collision probability.
  double max_collision_prob = 0.25;
  /// Fraction of the station's capacity that survives a backoff slot
  /// (the station still wins some TXOPs between deferrals).
  double backoff_penalty = 0.35;
  /// Deterministic backoff schedule (fleet::BackoffPolicy shape):
  /// capped exponential with seeded multiplicative jitter.
  std::size_t backoff_base_slots = 1;
  double backoff_multiplier = 2.0;
  std::size_t backoff_max_slots = 16;
  double backoff_jitter = 0.3;  ///< Must lie in [0, 1).
};

/// Throws std::invalid_argument on an empty or out-of-range mcs_pool,
/// overheads/probabilities outside [0, 1), error_growth < 1,
/// backoff_multiplier < 1, or backoff_jitter outside [0, 1).
void validate(const WifiContentionConfig& config);

/// 802.11ac-like PHY rate (Mbps) for MCS 0..9 (80 MHz, one spatial
/// stream). Monotone in mcs; throws std::out_of_range outside 0..9.
double wifi_phy_rate_mbps(int mcs);

/// Equal airtime shares of `stations` contenders after contention
/// overhead: every entry is (1 - overhead(stations)) / stations. The
/// shares sum to <= 1 and each entry is monotone-decreasing in the
/// contender count (property: net.wifi_airtime_shares).
std::vector<double> wifi_airtime_shares(const WifiContentionConfig& config,
                                        std::size_t stations);

/// Per-transmission error probability at `mcs`: min(0.5,
/// base_error_rate * error_growth^mcs).
double wifi_error_prob(const WifiContentionConfig& config, int mcs);

/// Goodput fraction of the PHY rate that survives the retry chain at
/// `mcs`: delivery probability of the truncated-geometric retry chain
/// divided by its expected airtime (expected transmissions plus retry
/// airtime overhead). Always in (0, 1].
double wifi_mac_efficiency(const WifiContentionConfig& config, int mcs);

/// Slots a station defers before retry `attempt` (0-based): the capped
/// exponential backoff_base_slots * backoff_multiplier^attempt, scaled
/// by a deterministic jitter factor in [1 - j, 1 + j] keyed by
/// (seed, station, attempt), never below 1. Pure: same arguments, same
/// delay (property: net.wifi_backoff_deterministic).
std::size_t wifi_backoff_slots(const WifiContentionConfig& config,
                               std::uint64_t seed, std::size_t station,
                               std::size_t attempt);

/// The contention state machine for one BSS. Each step():
///   * a station in backoff burns one deferral slot at backoff_penalty
///     capacity;
///   * otherwise it collides with probability collision_prob(k) and
///     enters a deterministic backoff of wifi_backoff_slots(attempt)
///     slots, or transmits cleanly and resets its attempt counter.
/// All randomness comes from the channel's own seeded Rng — it never
/// touches the Router's fading or measurement streams.
class WifiContentionChannel {
 public:
  /// `stations` must be >= 1; the per-station MCS is
  /// config.mcs_pool[station % pool size].
  WifiContentionChannel(WifiContentionConfig config, std::size_t stations,
                        std::uint64_t seed);

  std::size_t station_count() const { return stations_.size(); }
  int station_mcs(std::size_t station) const;

  /// Advances the per-station collision/backoff state one slot.
  void step();

  /// Station capacity (Mbps) this slot: airtime share x PHY rate x MAC
  /// efficiency, scaled by backoff_penalty while the station defers.
  double station_capacity_mbps(std::size_t station) const;

  /// Sum of the station capacities this slot (the BSS goodput bound).
  double aggregate_capacity_mbps() const;

  /// Whether the station is currently deferring (diagnostics/tests).
  bool in_backoff(std::size_t station) const;

 private:
  struct Station {
    int mcs = 0;
    double clear_capacity_mbps = 0.0;  ///< share x phy x efficiency.
    std::size_t attempt = 0;
    std::size_t backoff_remaining = 0;
  };

  WifiContentionConfig config_;
  std::uint64_t seed_;
  cvr::Rng rng_;
  double collision_prob_ = 0.0;
  std::vector<Station> stations_;
};

}  // namespace cvr::net
