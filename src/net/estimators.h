// Online estimators used by the real system (Section V):
//
// * "We estimate the available bandwidth for each user using Exponential
//   Moving Average (EMA)" — EmaThroughputEstimator.
// * "we use polynomial regression to predict the delay instead of linear
//   regression" — DelayPredictor, a degree-2 fit of measured delay vs
//   sent rate, with the analytic M/M/1 curve as a cold-start fallback.
//
// Both estimators are hardened against hostile measurements: a
// non-finite sample is discarded and a negative one clamps to zero, so
// a single corrupt report can never poison the estimate (observe() used
// to throw, which turned one bad packet into a crashed server loop).
// apply_stale_hold() is the companion policy for *missing* measurements
// — hold the last estimate briefly, then decay it toward a conservative
// re-probe floor (docs/resilience.md).
#pragma once

#include <cstddef>

#include "src/util/regression.h"

namespace cvr::net {

class EmaThroughputEstimator {
 public:
  explicit EmaThroughputEstimator(double alpha = 0.2, double initial_mbps = 40.0);

  /// Records the throughput observed in the last slot (Mbps).
  /// Non-finite samples are ignored (not counted); negative ones clamp
  /// to 0.
  void observe(double mbps);

  double estimate_mbps() const { return value_; }
  std::size_t observations() const { return count_; }

  /// Restores EMA state from a migration handoff frame
  /// (proto::UserHandoff): the carried estimate becomes the current
  /// value and the observation count resumes where the source server
  /// left off. Throws std::invalid_argument on a non-finite or negative
  /// estimate.
  void restore(double mbps, std::size_t count);

 private:
  double alpha_;
  double value_;
  std::size_t count_ = 0;
};

class DelayPredictor {
 public:
  /// `history`: how many (rate, delay) samples the regression retains.
  explicit DelayPredictor(std::size_t history = 256);

  /// Records a measured delivery delay (ms) for a slot where `rate_mbps`
  /// was sent. A sample with a non-finite rate or delay is ignored;
  /// negative components clamp to 0.
  void observe(double rate_mbps, double delay_ms);

  /// Predicted delay (ms) of sending at `rate_mbps` given an estimated
  /// link bandwidth `bandwidth_mbps` (used only for the cold-start
  /// analytic fallback). Never negative.
  double predict_ms(double rate_mbps, double bandwidth_mbps);

  bool trained() const;

 private:
  cvr::PolynomialRegressor poly_;
};

/// Stale-estimate policy: what an estimate is worth after `silent_slots`
/// slots without a fresh measurement. The estimate is held as-is for
/// `hold_slots` (measurement gaps of a few slots are normal), then
/// decays exponentially toward `floor_mbps` — the conservative rate the
/// server re-probes at once the silence ends, so a user coming back
/// from an outage ramps up instead of slamming a possibly-degraded link
/// with a pre-outage estimate.
struct StaleHoldConfig {
  std::size_t hold_slots = 33;   ///< ~0.5 s at 66 FPS.
  double decay_per_slot = 0.93;  ///< Estimate halves every ~10 slots.
  double floor_mbps = 1.0;       ///< Re-probe rate; never decays below.
};

/// Pure: estimate after the hold-then-decay policy. Returns the
/// estimate unchanged while silent_slots <= hold_slots; never returns
/// less than min(estimate, floor).
double apply_stale_hold(double estimate_mbps, std::size_t silent_slots,
                        const StaleHoldConfig& config);

/// Active bandwidth probing (docs/workloads.md): the speedtest-style
/// estimator arm. A passive EMA only sees the rate the allocator chose
/// to send — after an outage it can stay pessimistic for a long time
/// because low estimates beget low demands beget low measurements. A
/// periodic probe saturates a configured slice of the link on purpose,
/// measuring real headroom at the price of *consuming* that slice of
/// the slot budget (cf. the OBS BandwidthTestManager pattern,
/// SNIPPETS.md Snippet 1).
struct ProbingConfig {
  /// A probe fires on slots where slot % probe_period_slots == 0 (and
  /// slot > 0): once a second at the 66-FPS slot rate by default.
  std::size_t probe_period_slots = 66;
  /// Fraction of the current estimate a probe tries to consume.
  double probe_fraction = 0.25;
  /// Hard cap on the probe traffic (Mbps) regardless of the estimate.
  double probe_cap_mbps = 20.0;
  /// EMA weight of ordinary per-slot measurements.
  double alpha_passive = 0.2;
  /// EMA weight of probe-slot measurements: probes saturate the link,
  /// so their samples are trusted much more.
  double alpha_probe = 0.6;
  double initial_mbps = 40.0;
};

/// Throws std::invalid_argument on probe_period_slots == 0, alphas
/// outside (0, 1], probe_fraction outside [0, 1], or a negative/
/// non-finite probe_cap_mbps or initial_mbps.
void validate(const ProbingConfig& config);

/// Exact split of a slot budget into the content and probe portions.
/// probe_mbps = min(total, requested probe) and content_mbps is
/// bit-exactly total - probe_mbps, so the accounting conserves the
/// budget exactly (property: net.probing_estimator_sane).
struct BudgetSplit {
  double content_mbps = 0.0;
  double probe_mbps = 0.0;
};
BudgetSplit split_probe_budget(double total_mbps, double probe_mbps);

/// The probing estimator arm, registered beside EmaThroughputEstimator
/// (system::EstimatorArm selects between them). Hardened the same way:
/// non-finite samples are discarded, negative ones clamp to zero, and
/// the estimate is never negative or non-finite.
class ProbingThroughputEstimator {
 public:
  explicit ProbingThroughputEstimator(ProbingConfig config = {});

  /// Whether slot `slot` is a probe slot (pure; slot 0 never probes —
  /// the estimator has nothing but its prior to size the probe with).
  bool probe_due(std::size_t slot) const;

  /// Probe traffic (Mbps) the next probe wants: min(cap, fraction *
  /// estimate). Never negative or non-finite.
  double probe_budget_mbps() const;

  /// Records the throughput observed in an ordinary slot (Mbps).
  void observe_passive(double mbps);

  /// Records the throughput observed in a probe slot (Mbps) — same
  /// hardening, heavier EMA weight.
  void observe_probe(double mbps);

  double estimate_mbps() const { return value_; }
  std::size_t observations() const { return count_; }
  std::size_t probes() const { return probe_count_; }

  /// Restores state from a migration handoff frame (see
  /// EmaThroughputEstimator::restore). Throws std::invalid_argument on
  /// a non-finite or negative estimate.
  void restore(double mbps, std::size_t count);

 private:
  void observe(double mbps, double alpha);

  ProbingConfig config_;
  double value_;
  std::size_t count_ = 0;
  std::size_t probe_count_ = 0;
};

}  // namespace cvr::net
