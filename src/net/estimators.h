// Online estimators used by the real system (Section V):
//
// * "We estimate the available bandwidth for each user using Exponential
//   Moving Average (EMA)" — EmaThroughputEstimator.
// * "we use polynomial regression to predict the delay instead of linear
//   regression" — DelayPredictor, a degree-2 fit of measured delay vs
//   sent rate, with the analytic M/M/1 curve as a cold-start fallback.
#pragma once

#include <cstddef>

#include "src/util/regression.h"

namespace cvr::net {

class EmaThroughputEstimator {
 public:
  explicit EmaThroughputEstimator(double alpha = 0.2, double initial_mbps = 40.0);

  /// Records the throughput observed in the last slot (Mbps).
  void observe(double mbps);

  double estimate_mbps() const { return value_; }
  std::size_t observations() const { return count_; }

 private:
  double alpha_;
  double value_;
  std::size_t count_ = 0;
};

class DelayPredictor {
 public:
  /// `history`: how many (rate, delay) samples the regression retains.
  explicit DelayPredictor(std::size_t history = 256);

  /// Records a measured delivery delay (ms) for a slot where `rate_mbps`
  /// was sent.
  void observe(double rate_mbps, double delay_ms);

  /// Predicted delay (ms) of sending at `rate_mbps` given an estimated
  /// link bandwidth `bandwidth_mbps` (used only for the cold-start
  /// analytic fallback). Never negative.
  double predict_ms(double rate_mbps, double bandwidth_mbps);

  bool trained() const;

 private:
  cvr::PolynomialRegressor poly_;
};

}  // namespace cvr::net
