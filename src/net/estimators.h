// Online estimators used by the real system (Section V):
//
// * "We estimate the available bandwidth for each user using Exponential
//   Moving Average (EMA)" — EmaThroughputEstimator.
// * "we use polynomial regression to predict the delay instead of linear
//   regression" — DelayPredictor, a degree-2 fit of measured delay vs
//   sent rate, with the analytic M/M/1 curve as a cold-start fallback.
//
// Both estimators are hardened against hostile measurements: a
// non-finite sample is discarded and a negative one clamps to zero, so
// a single corrupt report can never poison the estimate (observe() used
// to throw, which turned one bad packet into a crashed server loop).
// apply_stale_hold() is the companion policy for *missing* measurements
// — hold the last estimate briefly, then decay it toward a conservative
// re-probe floor (docs/resilience.md).
#pragma once

#include <cstddef>

#include "src/util/regression.h"

namespace cvr::net {

class EmaThroughputEstimator {
 public:
  explicit EmaThroughputEstimator(double alpha = 0.2, double initial_mbps = 40.0);

  /// Records the throughput observed in the last slot (Mbps).
  /// Non-finite samples are ignored (not counted); negative ones clamp
  /// to 0.
  void observe(double mbps);

  double estimate_mbps() const { return value_; }
  std::size_t observations() const { return count_; }

  /// Restores EMA state from a migration handoff frame
  /// (proto::UserHandoff): the carried estimate becomes the current
  /// value and the observation count resumes where the source server
  /// left off. Throws std::invalid_argument on a non-finite or negative
  /// estimate.
  void restore(double mbps, std::size_t count);

 private:
  double alpha_;
  double value_;
  std::size_t count_ = 0;
};

class DelayPredictor {
 public:
  /// `history`: how many (rate, delay) samples the regression retains.
  explicit DelayPredictor(std::size_t history = 256);

  /// Records a measured delivery delay (ms) for a slot where `rate_mbps`
  /// was sent. A sample with a non-finite rate or delay is ignored;
  /// negative components clamp to 0.
  void observe(double rate_mbps, double delay_ms);

  /// Predicted delay (ms) of sending at `rate_mbps` given an estimated
  /// link bandwidth `bandwidth_mbps` (used only for the cold-start
  /// analytic fallback). Never negative.
  double predict_ms(double rate_mbps, double bandwidth_mbps);

  bool trained() const;

 private:
  cvr::PolynomialRegressor poly_;
};

/// Stale-estimate policy: what an estimate is worth after `silent_slots`
/// slots without a fresh measurement. The estimate is held as-is for
/// `hold_slots` (measurement gaps of a few slots are normal), then
/// decays exponentially toward `floor_mbps` — the conservative rate the
/// server re-probes at once the silence ends, so a user coming back
/// from an outage ramps up instead of slamming a possibly-degraded link
/// with a pre-outage estimate.
struct StaleHoldConfig {
  std::size_t hold_slots = 33;   ///< ~0.5 s at 66 FPS.
  double decay_per_slot = 0.93;  ///< Estimate halves every ~10 slots.
  double floor_mbps = 1.0;       ///< Re-probe rate; never decays below.
};

/// Pure: estimate after the hold-then-decay policy. Returns the
/// estimate unchanged while silent_slots <= hold_slots; never returns
/// less than min(estimate, floor).
double apply_stale_hold(double estimate_mbps, std::size_t silent_slots,
                        const StaleHoldConfig& config);

}  // namespace cvr::net
