// Online packet-loss estimation (Section VIII extension).
//
// The paper leaves packet loss out of the published formulation but
// notes the algorithm "can be further improved by accounting for such
// information". The dominant loss mechanism on a saturating WLAN is
// congestion, which grows superlinearly with utilisation; we fit the
// two-parameter model
//     p(u) = a + b u^3
// to observed (utilisation, loss-fraction) samples by linear regression
// in the u^3 feature — the same family the RTP transport model uses, but
// learned purely from what the server can measure (ACK gaps per slot).
#pragma once

#include <cstddef>

#include "src/util/regression.h"

namespace cvr::net {

class LossEstimator {
 public:
  /// `window`: number of recent slots retained; `prior_base`: assumed
  /// quiet-link loss before any evidence.
  explicit LossEstimator(std::size_t window = 512, double prior_base = 0.002);

  /// Records one slot's observation: link utilisation in [0, 1] and the
  /// fraction of packets lost in that slot.
  void observe(double utilization, double loss_fraction);

  /// Estimated per-packet loss probability at the given utilisation,
  /// clamped to [0, 0.9]. Falls back to the prior until enough samples.
  double packet_loss(double utilization);

  /// Probability a frame of `packets` packets arrives incomplete.
  double frame_loss(double utilization, double packets);

  bool trained() const { return samples_ >= 16; }
  std::size_t samples() const { return samples_; }

 private:
  cvr::SlidingLinearRegressor fit_;  // loss vs u^3
  double prior_base_;
  std::size_t samples_ = 0;
};

}  // namespace cvr::net
