// RTP-over-UDP tile transport (packet level).
//
// Section V: "we use Real-Time Transport Protocol (RTP) in our system
// instead of traditional TCP ... RTP is built upon UDP such that we can
// concisely control the sending rate of the tiles and either retransmit
// the tiles or not." Section VIII: packet loss is inevitable and not
// compensated — a tile with any lost packet cannot be decoded that slot.
//
// The model: a tile of S megabits becomes ceil(S / packet_size) packets;
// each packet is lost i.i.d. with a probability that grows with link
// utilisation (collisions/queue overflow dominate near saturation).
#pragma once

#include <cstdint>

#include "src/util/rng.h"

namespace cvr::net {

struct RtpConfig {
  double packet_bits = 9600.0;     ///< 1200-byte RTP payloads.
  double base_loss = 0.002;        ///< Loss floor on a quiet link.
  double congestion_loss = 0.08;   ///< Extra loss at 100% utilisation.
  double congestion_exponent = 3.0;///< Loss ramps sharply near saturation.
};

/// Outcome of transmitting one tile in one slot.
struct TileTransmission {
  std::uint32_t packets = 0;
  std::uint32_t lost_packets = 0;       ///< Still missing after all rounds.
  std::uint32_t retransmitted = 0;      ///< Packets sent again (retx mode).
  double extra_delay_ms = 0.0;          ///< Added by retransmission rounds.
  bool complete() const { return packets > 0 && lost_packets == 0; }
};

class RtpTransport {
 public:
  RtpTransport(RtpConfig config, std::uint64_t seed);

  /// Per-packet loss probability at the given utilisation (granted rate /
  /// capacity, clamped to [0,1]). Pure; exposed for testing.
  double loss_probability(double utilization) const;

  /// Transmits a tile of `megabits` over a link at `utilization`.
  TileTransmission send_tile(double megabits, double utilization);

  /// Section V: RTP lets the sender "either retransmit the tiles or
  /// not". This variant retries lost packets for up to `rounds` extra
  /// rounds within the slot; each round adds one local-WLAN RTT of
  /// delay plus the retransmitted packets' airtime at `rate_mbps`.
  TileTransmission send_tile_with_retx(double megabits, double utilization,
                                       int rounds, double rate_mbps,
                                       double rtt_ms = 2.0);

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_lost() const { return packets_lost_; }

 private:
  RtpConfig config_;
  cvr::Rng rng_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_lost_ = 0;
};

}  // namespace cvr::net
