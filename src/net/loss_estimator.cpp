#include "src/net/loss_estimator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cvr::net {

LossEstimator::LossEstimator(std::size_t window, double prior_base)
    : fit_(window), prior_base_(prior_base) {
  if (prior_base < 0.0 || prior_base >= 1.0) {
    throw std::invalid_argument("LossEstimator: bad prior");
  }
}

void LossEstimator::observe(double utilization, double loss_fraction) {
  if (loss_fraction < 0.0 || loss_fraction > 1.0) {
    throw std::invalid_argument("LossEstimator: loss fraction out of [0,1]");
  }
  const double u = std::clamp(utilization, 0.0, 1.0);
  fit_.add(u * u * u, loss_fraction);
  ++samples_;
}

double LossEstimator::packet_loss(double utilization) {
  const double u = std::clamp(utilization, 0.0, 1.0);
  if (!trained()) return prior_base_;
  return std::clamp(fit_.predict(u * u * u), 0.0, 0.9);
}

double LossEstimator::frame_loss(double utilization, double packets) {
  if (packets <= 0.0) return 0.0;
  const double p = packet_loss(utilization);
  return 1.0 - std::pow(1.0 - p, packets);
}

}  // namespace cvr::net
