#include "src/net/token_bucket.h"

#include <algorithm>

namespace cvr::net {

TokenBucket::TokenBucket(double rate_mbps, double burst_megabits)
    : rate_(rate_mbps), burst_(burst_megabits), tokens_(burst_megabits) {
  if (rate_mbps <= 0.0 || burst_megabits <= 0.0) {
    throw std::invalid_argument("TokenBucket: non-positive rate or burst");
  }
}

void TokenBucket::tick(double seconds) {
  if (seconds < 0.0) throw std::invalid_argument("TokenBucket: negative tick");
  tokens_ = std::min(burst_, tokens_ + rate_ * seconds);
}

double TokenBucket::consume(double megabits) {
  if (megabits < 0.0) {
    throw std::invalid_argument("TokenBucket: negative consume");
  }
  const double granted = std::min(megabits, tokens_);
  tokens_ -= granted;
  return granted;
}

void TokenBucket::set_rate(double rate_mbps) {
  if (rate_mbps <= 0.0) throw std::invalid_argument("TokenBucket: bad rate");
  rate_ = rate_mbps;
}

}  // namespace cvr::net
