#include "src/net/mm1.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/stats.h"

namespace cvr::net {

double mm1_delay(double rate, double bandwidth) {
  if (rate < 0.0 || bandwidth < 0.0) {
    throw std::invalid_argument("mm1_delay: negative rate or bandwidth");
  }
  if (rate == 0.0) return 0.0;
  if (rate >= bandwidth) return kSaturatedDelay;
  const double d = rate / (bandwidth - rate);
  return std::min(d, kSaturatedDelay);
}

double mm1_mean_sojourn_ms(double offered_mbps, double capacity_mbps,
                           double packet_bits) {
  if (offered_mbps <= 0.0) return 0.0;
  if (offered_mbps >= capacity_mbps) return kSaturatedDelay;
  // lambda, mu in packets per millisecond (Mbps = kb/ms).
  const double lambda = offered_mbps * 1000.0 / packet_bits;
  const double mu = capacity_mbps * 1000.0 / packet_bits;
  return 1.0 / (mu - lambda);
}

std::vector<double> Mm1Simulator::sojourn_samples(double offered_mbps,
                                                  double capacity_mbps,
                                                  std::size_t packets,
                                                  std::uint64_t seed,
                                                  double packet_bits) {
  if (offered_mbps <= 0.0 || capacity_mbps <= 0.0) {
    throw std::invalid_argument("Mm1Simulator: non-positive rates");
  }
  cvr::Rng rng(seed);
  const double lambda = offered_mbps * 1000.0 / packet_bits;  // pkt/ms
  const double mu = capacity_mbps * 1000.0 / packet_bits;

  std::vector<double> sojourns;
  sojourns.reserve(packets);
  double clock_ms = 0.0;
  double server_free_at = 0.0;
  for (std::size_t i = 0; i < packets; ++i) {
    clock_ms += rng.exponential(lambda);
    const double start = std::max(clock_ms, server_free_at);
    const double service = rng.exponential(mu);
    server_free_at = start + service;
    sojourns.push_back(server_free_at - clock_ms);
  }
  return sojourns;
}

Mm1Simulator::Result Mm1Simulator::run(double offered_mbps,
                                       double capacity_mbps,
                                       std::size_t packets, std::uint64_t seed,
                                       double packet_bits) {
  const auto samples =
      sojourn_samples(offered_mbps, capacity_mbps, packets, seed, packet_bits);
  Result result;
  result.samples = samples.size();
  if (samples.empty()) return result;
  cvr::RunningStat stat;
  for (double s : samples) stat.add(s);
  cvr::Cdf cdf(samples);
  result.mean_sojourn_ms = stat.mean();
  result.p95_sojourn_ms = cdf.quantile(0.95);
  result.max_sojourn_ms = stat.max();
  return result;
}

}  // namespace cvr::net
