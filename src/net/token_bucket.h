// Token-bucket traffic shaper — the Linux TC emulation.
//
// Section VI throttles each phone with `tc` to one of
// {40, 45, 50, 55, 60} Mbps. A token bucket with a small burst allowance
// is exactly what tc's tbf qdisc implements; we expose a slot-granular
// consume() so the system emulation can ask "how many megabits may user n
// push this slot".
#pragma once

#include <stdexcept>

namespace cvr::net {

class TokenBucket {
 public:
  /// `rate_mbps`: steady-state shaping rate; `burst_megabits`: bucket
  /// depth (defaults to ~one slot of tokens at 60 Mbps).
  explicit TokenBucket(double rate_mbps, double burst_megabits = 1.0);

  /// Advances time, accruing tokens.
  void tick(double seconds);

  /// Attempts to consume `megabits`; returns the amount actually granted
  /// (all of it, or whatever tokens remain).
  double consume(double megabits);

  double available_megabits() const { return tokens_; }
  double rate_mbps() const { return rate_; }

  /// Reconfigures the shaping rate (used when an experiment reassigns
  /// throttles between runs).
  void set_rate(double rate_mbps);

 private:
  double rate_;
  double burst_;
  double tokens_;
};

}  // namespace cvr::net
