#include "src/net/wireless_channel.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cvr::net {

FadingProcess::FadingProcess(const WirelessChannelConfig& config,
                             std::uint64_t seed)
    : config_(config), rng_(seed) {}

double FadingProcess::step() {
  const double rho = config_.fading_rho;
  const double innovation_sigma =
      config_.fading_sigma * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  log_state_ = rho * log_state_ + rng_.normal(0.0, innovation_sigma);
  // Centre the multiplier near 1 with a mild cap on upside (an air link
  // rarely beats its shaped rate by much).
  multiplier_ = std::min(1.3, std::exp(log_state_));
  return multiplier_;
}

Router::Router(double aggregate_mbps, std::vector<double> user_throttles_mbps,
               WirelessChannelConfig config, std::uint64_t seed)
    : aggregate_(aggregate_mbps),
      throttles_(std::move(user_throttles_mbps)),
      config_(config),
      rng_(seed ^ 0xB07E4ull) {
  if (aggregate_ <= 0.0) throw std::invalid_argument("Router: bad aggregate");
  if (throttles_.empty()) throw std::invalid_argument("Router: no users");
  for (double t : throttles_) {
    if (t <= 0.0) throw std::invalid_argument("Router: bad throttle");
  }
  fading_.reserve(throttles_.size());
  for (std::size_t u = 0; u < throttles_.size(); ++u) {
    fading_.emplace_back(config_, seed + 101 * (u + 1));
  }
  if (config_.contention.enabled) {
    // Own seed offset and own Rng: the contention state machine never
    // perturbs the fading or interference streams, so toggling it off
    // leaves the legacy model bit-identical.
    wifi_ = std::make_unique<WifiContentionChannel>(
        config_.contention, throttles_.size(), seed + 0x571F1ull);
  }
  effective_user_.resize(throttles_.size(), 0.0);
  step();
}

void Router::set_capacity_multiplier(double multiplier) {
  if (!std::isfinite(multiplier) || multiplier < 0.0) {
    throw std::invalid_argument("Router: bad capacity multiplier");
  }
  outage_multiplier_ = multiplier;
}

void Router::step() {
  if (config_.interference) {
    if (interference_burst_) {
      if (rng_.bernoulli(config_.interference_exit)) interference_burst_ = false;
    } else if (rng_.bernoulli(config_.interference_prob)) {
      interference_burst_ = true;
    }
  }
  const double burst_mult =
      (interference_burst_ ? config_.interference_depth : 1.0) *
      outage_multiplier_;
  if (wifi_ != nullptr) {
    // Contention mode: the BSS goodput bound caps the aggregate and each
    // user is additionally capped at their station's airtime-share
    // goodput before the fading/interference multipliers apply.
    wifi_->step();
    effective_aggregate_ =
        std::min(aggregate_, wifi_->aggregate_capacity_mbps()) * burst_mult;
    for (std::size_t u = 0; u < throttles_.size(); ++u) {
      effective_user_[u] =
          std::min(throttles_[u], wifi_->station_capacity_mbps(u)) *
          fading_[u].step() * burst_mult;
    }
    return;
  }
  effective_aggregate_ = aggregate_ * burst_mult;
  for (std::size_t u = 0; u < throttles_.size(); ++u) {
    effective_user_[u] = throttles_[u] * fading_[u].step() * burst_mult;
  }
}

double Router::per_user_capacity(std::size_t user) const {
  return effective_user_.at(user);
}

std::vector<double> Router::serve(
    const std::vector<double>& demands_mbps) const {
  if (demands_mbps.size() != throttles_.size()) {
    throw std::invalid_argument("Router::serve: demand count mismatch");
  }
  std::vector<double> capped(demands_mbps.size());
  for (std::size_t u = 0; u < demands_mbps.size(); ++u) {
    capped[u] = std::min(std::max(0.0, demands_mbps[u]), effective_user_[u]);
  }
  return max_min_fair(capped, effective_aggregate_);
}

std::vector<double> max_min_fair(const std::vector<double>& demands,
                                 double capacity) {
  std::vector<double> grant(demands.size(), 0.0);
  double remaining = capacity;
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i] > 0.0) active.push_back(i);
  }
  // Progressive filling: repeatedly give every active user an equal share
  // until its demand is met or capacity runs out.
  while (!active.empty() && remaining > 1e-12) {
    const double share = remaining / static_cast<double>(active.size());
    std::vector<std::size_t> still_active;
    double used = 0.0;
    for (std::size_t i : active) {
      const double want = demands[i] - grant[i];
      const double give = std::min(want, share);
      grant[i] += give;
      used += give;
      if (grant[i] + 1e-12 < demands[i]) still_active.push_back(i);
    }
    remaining -= used;
    if (still_active.size() == active.size() && used < 1e-12) break;
    active = std::move(still_active);
  }
  return grant;
}

}  // namespace cvr::net
