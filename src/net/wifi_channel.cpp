#include "src/net/wifi_channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cvr::net {

namespace {

/// 802.11ac, 80 MHz, one spatial stream, long GI (Mbps).
constexpr double kPhyRateMbps[] = {32.5,  65.0,  97.5,  130.0, 195.0,
                                   260.0, 292.5, 325.0, 390.0, 433.3};
constexpr int kMaxMcs = 9;

}  // namespace

void validate(const WifiContentionConfig& config) {
  if (config.mcs_pool.empty()) {
    throw std::invalid_argument("WifiContentionConfig: empty mcs_pool");
  }
  for (int mcs : config.mcs_pool) {
    if (mcs < 0 || mcs > kMaxMcs) {
      throw std::invalid_argument("WifiContentionConfig: mcs out of 0..9");
    }
  }
  auto unit_interval = [](double v) {
    return std::isfinite(v) && v >= 0.0 && v < 1.0;
  };
  if (!unit_interval(config.contention_overhead) ||
      !unit_interval(config.max_overhead)) {
    throw std::invalid_argument("WifiContentionConfig: overhead outside [0,1)");
  }
  if (!unit_interval(config.base_error_rate)) {
    throw std::invalid_argument(
        "WifiContentionConfig: base_error_rate outside [0,1)");
  }
  if (!std::isfinite(config.error_growth) || config.error_growth < 1.0) {
    throw std::invalid_argument("WifiContentionConfig: error_growth < 1");
  }
  if (!std::isfinite(config.retry_airtime_overhead) ||
      config.retry_airtime_overhead < 0.0) {
    throw std::invalid_argument(
        "WifiContentionConfig: negative retry_airtime_overhead");
  }
  if (!unit_interval(config.collision_prob_per_station) ||
      !unit_interval(config.max_collision_prob)) {
    throw std::invalid_argument(
        "WifiContentionConfig: collision probability outside [0,1)");
  }
  if (!unit_interval(config.backoff_penalty)) {
    throw std::invalid_argument(
        "WifiContentionConfig: backoff_penalty outside [0,1)");
  }
  if (!std::isfinite(config.backoff_multiplier) ||
      config.backoff_multiplier < 1.0) {
    throw std::invalid_argument(
        "WifiContentionConfig: backoff_multiplier < 1");
  }
  if (!unit_interval(config.backoff_jitter)) {
    throw std::invalid_argument(
        "WifiContentionConfig: backoff_jitter outside [0,1)");
  }
}

double wifi_phy_rate_mbps(int mcs) {
  if (mcs < 0 || mcs > kMaxMcs) {
    throw std::out_of_range("wifi_phy_rate_mbps: mcs out of 0..9");
  }
  return kPhyRateMbps[mcs];
}

std::vector<double> wifi_airtime_shares(const WifiContentionConfig& config,
                                        std::size_t stations) {
  if (stations == 0) {
    throw std::invalid_argument("wifi_airtime_shares: zero stations");
  }
  const double overhead =
      std::min(config.max_overhead,
               config.contention_overhead * static_cast<double>(stations - 1));
  const double share = (1.0 - overhead) / static_cast<double>(stations);
  return std::vector<double>(stations, share);
}

double wifi_error_prob(const WifiContentionConfig& config, int mcs) {
  if (mcs < 0 || mcs > kMaxMcs) {
    throw std::out_of_range("wifi_error_prob: mcs out of 0..9");
  }
  return std::min(0.5, config.base_error_rate *
                           std::pow(config.error_growth,
                                    static_cast<double>(mcs)));
}

double wifi_mac_efficiency(const WifiContentionConfig& config, int mcs) {
  const double p = wifi_error_prob(config, mcs);
  const double rounds = static_cast<double>(config.max_retries) + 1.0;
  // Truncated-geometric retry chain: deliver with prob 1 - p^rounds,
  // spend (1 - p^rounds) / (1 - p) transmissions in expectation
  // (p <= 0.5 < 1 by construction).
  const double delivery = 1.0 - std::pow(p, rounds);
  const double expected_tx = delivery / (1.0 - p);
  const double airtime =
      expected_tx * (1.0 + config.retry_airtime_overhead * (expected_tx - 1.0));
  return delivery / airtime;
}

std::size_t wifi_backoff_slots(const WifiContentionConfig& config,
                               std::uint64_t seed, std::size_t station,
                               std::size_t attempt) {
  const double base = static_cast<double>(
      std::max<std::size_t>(1, config.backoff_base_slots));
  const double cap = static_cast<double>(
      std::max<std::size_t>(1, config.backoff_max_slots));
  const double nominal =
      std::min(cap, base * std::pow(config.backoff_multiplier,
                                    static_cast<double>(attempt)));
  // Deterministic jitter keyed by (seed, station, attempt), the
  // fleet::retry_delay_slots shape with its own mixing constant.
  cvr::SplitMix64 mixer(seed ^
                        (0x5C0FFEEull +
                         0x9E3779B97F4A7C15ull *
                             static_cast<std::uint64_t>(station + 1) +
                         0xD1B54A32D192ED03ull *
                             static_cast<std::uint64_t>(attempt + 1)));
  const double unit = static_cast<double>(mixer.next() >> 11) *
                      (1.0 / 9007199254740992.0);  // [0, 1)
  const double factor = 1.0 + config.backoff_jitter * (2.0 * unit - 1.0);
  const double jittered = nominal * factor;
  return static_cast<std::size_t>(std::max(1.0, std::floor(jittered + 0.5)));
}

WifiContentionChannel::WifiContentionChannel(WifiContentionConfig config,
                                             std::size_t stations,
                                             std::uint64_t seed)
    : config_(std::move(config)), seed_(seed), rng_(seed ^ 0x571F1ull) {
  validate(config_);
  if (stations == 0) {
    throw std::invalid_argument("WifiContentionChannel: zero stations");
  }
  const std::vector<double> shares = wifi_airtime_shares(config_, stations);
  stations_.resize(stations);
  for (std::size_t s = 0; s < stations; ++s) {
    Station& station = stations_[s];
    station.mcs = config_.mcs_pool[s % config_.mcs_pool.size()];
    station.clear_capacity_mbps = shares[s] *
                                  wifi_phy_rate_mbps(station.mcs) *
                                  wifi_mac_efficiency(config_, station.mcs);
  }
  collision_prob_ =
      std::min(config_.max_collision_prob,
               config_.collision_prob_per_station *
                   static_cast<double>(stations - 1));
}

int WifiContentionChannel::station_mcs(std::size_t station) const {
  return stations_.at(station).mcs;
}

void WifiContentionChannel::step() {
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    Station& station = stations_[s];
    if (station.backoff_remaining > 0) {
      --station.backoff_remaining;
      continue;
    }
    if (collision_prob_ > 0.0 && rng_.bernoulli(collision_prob_)) {
      station.backoff_remaining =
          wifi_backoff_slots(config_, seed_, s, station.attempt);
      if (station.attempt < config_.max_retries) ++station.attempt;
    } else {
      station.attempt = 0;
    }
  }
}

double WifiContentionChannel::station_capacity_mbps(std::size_t station) const {
  const Station& s = stations_.at(station);
  const double penalty = s.backoff_remaining > 0 ? config_.backoff_penalty : 1.0;
  return s.clear_capacity_mbps * penalty;
}

double WifiContentionChannel::aggregate_capacity_mbps() const {
  double total = 0.0;
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    total += station_capacity_mbps(s);
  }
  return total;
}

bool WifiContentionChannel::in_backoff(std::size_t station) const {
  return stations_.at(station).backoff_remaining > 0;
}

}  // namespace cvr::net
