// Reliable TCP-like side channel for ACKs and pose uploads.
//
// Section V: delivery/release acknowledgments and motion uploads travel
// over TCP (reliable, in order) while tiles go over RTP. We model the
// side channel as a FIFO with a fixed latency in slots: a message sent in
// slot t is readable at slot t + latency.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace cvr::net {

template <typename Message>
class AckChannel {
 public:
  explicit AckChannel(std::size_t latency_slots = 1)
      : latency_(latency_slots) {}

  /// Enqueues a message in slot `now`.
  void send(std::size_t now, Message message) {
    queue_.push_back({now + latency_, std::move(message)});
  }

  /// Pops every message that has arrived by slot `now` (in send order).
  std::vector<Message> receive(std::size_t now) {
    std::vector<Message> out;
    while (!queue_.empty() && queue_.front().deliver_at <= now) {
      out.push_back(std::move(queue_.front().payload));
      queue_.pop_front();
    }
    return out;
  }

  std::size_t in_flight() const { return queue_.size(); }
  std::size_t latency() const { return latency_; }

 private:
  struct Entry {
    std::size_t deliver_at;
    Message payload;
  };
  std::size_t latency_;
  std::deque<Entry> queue_;
};

}  // namespace cvr::net
