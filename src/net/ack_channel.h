// Reliable TCP-like side channel for ACKs and pose uploads.
//
// Section V: delivery/release acknowledgments and motion uploads travel
// over TCP (reliable, in order) while tiles go over RTP. We model the
// side channel as a FIFO with a fixed latency in slots: a message sent in
// slot t is readable at slot t + latency.
//
// Fault injection can black the channel out (drop_until): while a
// blackout is in force, sends are lost and so is anything in flight that
// would have delivered inside the blackout window — modelling the side
// channel's socket going down, not merely slowing.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>
#include <vector>

namespace cvr::net {

template <typename Message>
class AckChannel {
 public:
  explicit AckChannel(std::size_t latency_slots = 1)
      : latency_(latency_slots) {}

  /// Enqueues a message in slot `now`. Dropped silently if `now` falls
  /// inside an active blackout (see drop_until).
  void send(std::size_t now, Message message) {
    if (now < blackout_until_) return;  // channel is down: message lost
    queue_.push_back({now + latency_, std::move(message)});
  }

  /// Pops every message that has arrived by slot `now` (in send order).
  ///
  /// `now` must be monotonically non-decreasing across calls: the
  /// channel models wall-clock slots, and winding the clock backwards
  /// would silently re-order deliveries relative to earlier receives.
  /// Throws std::logic_error on a regression rather than reordering.
  std::vector<Message> receive(std::size_t now) {
    if (now < last_receive_slot_) {
      throw std::logic_error(
          "AckChannel::receive: non-monotonic now (clock went backwards)");
    }
    last_receive_slot_ = now;
    std::vector<Message> out;
    while (!queue_.empty() && queue_.front().deliver_at <= now) {
      out.push_back(std::move(queue_.front().payload));
      queue_.pop_front();
    }
    return out;
  }

  /// Blackout hook for fault injection: the channel is down until
  /// `slot` (exclusive). Messages sent while `now < slot` are lost, and
  /// in-flight messages that would deliver before `slot` are dropped
  /// immediately. Calling with an earlier slot than a previous blackout
  /// never shortens it.
  void drop_until(std::size_t slot) {
    if (slot <= blackout_until_) return;
    blackout_until_ = slot;
    std::erase_if(queue_, [slot](const Entry& e) {
      return e.deliver_at < slot;
    });
  }

  std::size_t in_flight() const { return queue_.size(); }
  std::size_t latency() const { return latency_; }
  std::size_t blackout_until() const { return blackout_until_; }

 private:
  struct Entry {
    std::size_t deliver_at;
    Message payload;
  };
  std::size_t latency_;
  std::size_t blackout_until_ = 0;
  std::size_t last_receive_slot_ = 0;
  std::deque<Entry> queue_;
};

}  // namespace cvr::net
