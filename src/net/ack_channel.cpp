#include "src/net/ack_channel.h"

// AckChannel is a template; this translation unit exists to anchor the
// target and instantiate a common specialisation for faster builds.

namespace cvr::net {

template class AckChannel<unsigned long long>;

}  // namespace cvr::net
