#include "src/net/rtp_transport.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cvr::net {

RtpTransport::RtpTransport(RtpConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.packet_bits <= 0.0 || config_.base_loss < 0.0 ||
      config_.base_loss >= 1.0 || config_.congestion_loss < 0.0) {
    throw std::invalid_argument("RtpConfig: invalid parameters");
  }
}

double RtpTransport::loss_probability(double utilization) const {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return std::min(
      0.9, config_.base_loss +
               config_.congestion_loss * std::pow(u, config_.congestion_exponent));
}

TileTransmission RtpTransport::send_tile(double megabits, double utilization) {
  if (megabits < 0.0) {
    throw std::invalid_argument("RtpTransport: negative tile size");
  }
  TileTransmission tx;
  tx.packets = static_cast<std::uint32_t>(
      std::ceil(megabits * 1e6 / config_.packet_bits));
  const double p = loss_probability(utilization);
  for (std::uint32_t i = 0; i < tx.packets; ++i) {
    if (rng_.bernoulli(p)) ++tx.lost_packets;
  }
  packets_sent_ += tx.packets;
  packets_lost_ += tx.lost_packets;
  return tx;
}

TileTransmission RtpTransport::send_tile_with_retx(double megabits,
                                                   double utilization,
                                                   int rounds,
                                                   double rate_mbps,
                                                   double rtt_ms) {
  if (rounds < 0 || rate_mbps < 0.0 || rtt_ms < 0.0) {
    throw std::invalid_argument("RtpTransport: bad retransmission arguments");
  }
  TileTransmission tx = send_tile(megabits, utilization);
  const double p = loss_probability(utilization);
  for (int round = 0; round < rounds && tx.lost_packets > 0; ++round) {
    const std::uint32_t resend = tx.lost_packets;
    tx.retransmitted += resend;
    packets_sent_ += resend;
    tx.lost_packets = 0;
    for (std::uint32_t i = 0; i < resend; ++i) {
      if (rng_.bernoulli(p)) ++tx.lost_packets;
    }
    packets_lost_ += tx.lost_packets;
    // Detect-and-resend costs one RTT plus the resent packets' airtime.
    const double airtime_ms =
        rate_mbps > 1e-9
            ? resend * config_.packet_bits / (rate_mbps * 1e3)
            : 0.0;
    tx.extra_delay_ms += rtt_ms + airtime_ms;
  }
  return tx;
}

}  // namespace cvr::net
