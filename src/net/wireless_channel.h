// Wireless channel and router model for the real-world experiments.
//
// Section VI: phones are throttled per-user with Linux TC ({40..60}
// Mbps), routers cap the aggregate (400 Mbps for one 802.11ac router,
// 800 Mbps for two bridged ones), and "the actual throughput varies with
// time under the wireless network"; with two routers "the variance of
// the bandwidth capacity is even larger ... due to the possible wireless
// interference". Fig. 8 shows Firefly/PAVQ degrading precisely because
// of that extra variance.
//
// Model: per-user effective capacity = TC throttle x fading multiplier,
// where fading is AR(1) log-normal; interference mode adds bursty deep
// dips shared across users of the same router. The router distributes
// its aggregate capacity across users' demands by max-min fairness.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/wifi_channel.h"
#include "src/util/rng.h"

namespace cvr::net {

struct WirelessChannelConfig {
  double fading_sigma = 0.10;      ///< Log-domain std-dev of the multiplier.
  double fading_rho = 0.9;         ///< AR(1) coefficient per slot.
  bool interference = false;        ///< Two-router mode (Fig. 8).
  double interference_prob = 0.04;  ///< Per-slot chance a burst starts.
  double interference_depth = 0.45; ///< Multiplier during a burst.
  double interference_exit = 0.12;  ///< Per-slot chance the burst ends
                                    ///< (mean burst ~8 slots / 125 ms).
  /// Wi-Fi contention model (docs/workloads.md): when enabled, the
  /// router caps each user at their station's airtime-share goodput and
  /// the aggregate at the BSS goodput bound, both on top of the legacy
  /// fading/interference multipliers. Off by default — the Router is
  /// then bit-identical to the fading-only model (no channel is
  /// constructed and no RNG stream is consumed).
  WifiContentionConfig contention;
};

/// One user's time-varying air-link quality: a multiplier in (0, ~1.3]
/// applied to the TC throttle.
class FadingProcess {
 public:
  FadingProcess(const WirelessChannelConfig& config, std::uint64_t seed);

  /// Advances one slot and returns the current multiplier.
  double step();

  double current() const { return multiplier_; }

 private:
  WirelessChannelConfig config_;
  cvr::Rng rng_;
  double log_state_ = 0.0;
  double multiplier_ = 1.0;
};

/// A router shared by a set of users. Each slot:
///   capacity_n = throttle_n * fading_n * interference,
///   aggregate cap = router capacity (also fading in interference mode),
/// and demands are served max-min fairly.
class Router {
 public:
  Router(double aggregate_mbps, std::vector<double> user_throttles_mbps,
         WirelessChannelConfig config, std::uint64_t seed);

  std::size_t user_count() const { return throttles_.size(); }

  /// Advances one slot; after this, per_user_capacity()/aggregate() give
  /// the slot's effective limits.
  void step();

  /// Fault-injection hook: scales the *next* step()'s effective
  /// aggregate and per-user capacities by `multiplier` (a bandwidth
  /// outage or cliff; 0 = total blackout). 1.0 — the default — is the
  /// healthy channel, and leaves every computation bit-identical.
  /// Throws std::invalid_argument on a negative or non-finite value.
  void set_capacity_multiplier(double multiplier);
  double capacity_multiplier() const { return outage_multiplier_; }

  /// Effective per-user air-link capacity (Mbps) this slot.
  double per_user_capacity(std::size_t user) const;

  /// Effective aggregate capacity (Mbps) this slot.
  double aggregate_capacity() const { return effective_aggregate_; }

  /// Serves the given demands (Mbps) max-min fairly under both the
  /// per-user and aggregate limits; returns the granted rates.
  std::vector<double> serve(const std::vector<double>& demands_mbps) const;

  /// The contention channel, when config.contention.enabled; nullptr
  /// otherwise (tests/diagnostics).
  const WifiContentionChannel* contention() const { return wifi_.get(); }

 private:
  double aggregate_;
  std::vector<double> throttles_;
  WirelessChannelConfig config_;
  std::vector<FadingProcess> fading_;
  std::unique_ptr<WifiContentionChannel> wifi_;
  cvr::Rng rng_;
  bool interference_burst_ = false;
  double outage_multiplier_ = 1.0;
  double effective_aggregate_ = 0.0;
  std::vector<double> effective_user_;
};

/// Max-min fair allocation of `capacity` across `demands` with per-user
/// caps already folded into demands. Exposed for testing.
std::vector<double> max_min_fair(const std::vector<double>& demands,
                                 double capacity);

}  // namespace cvr::net
