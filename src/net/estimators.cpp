#include "src/net/estimators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/net/mm1.h"
#include "src/util/units.h"

namespace cvr::net {

EmaThroughputEstimator::EmaThroughputEstimator(double alpha,
                                               double initial_mbps)
    : alpha_(alpha), value_(initial_mbps) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("EmaThroughputEstimator: alpha out of (0,1]");
  }
}

void EmaThroughputEstimator::observe(double mbps) {
  if (!std::isfinite(mbps)) return;  // a corrupt measurement is no measurement
  const double sample = std::max(0.0, mbps);
  value_ += alpha_ * (sample - value_);
  ++count_;
}

void EmaThroughputEstimator::restore(double mbps, std::size_t count) {
  if (!std::isfinite(mbps) || mbps < 0.0) {
    throw std::invalid_argument("EmaThroughputEstimator: invalid restore");
  }
  value_ = mbps;
  count_ = count;
}

DelayPredictor::DelayPredictor(std::size_t history) : poly_(2, history) {}

void DelayPredictor::observe(double rate_mbps, double delay_ms) {
  if (!std::isfinite(rate_mbps) || !std::isfinite(delay_ms)) return;
  poly_.add(std::max(0.0, rate_mbps), std::max(0.0, delay_ms));
}

double DelayPredictor::predict_ms(double rate_mbps, double bandwidth_mbps) {
  if (!trained()) {
    // Cold start: analytic M/M/1 in slot-delay units scaled to ms.
    return mm1_delay(rate_mbps, bandwidth_mbps) * cvr::kSlotMillis;
  }
  return std::max(0.0, poly_.predict(rate_mbps));
}

bool DelayPredictor::trained() const {
  return poly_.size() >= 8;  // enough samples for a stable quadratic
}

void validate(const ProbingConfig& config) {
  if (config.probe_period_slots == 0) {
    throw std::invalid_argument("ProbingConfig: zero probe_period_slots");
  }
  auto good_alpha = [](double a) {
    return std::isfinite(a) && a > 0.0 && a <= 1.0;
  };
  if (!good_alpha(config.alpha_passive) || !good_alpha(config.alpha_probe)) {
    throw std::invalid_argument("ProbingConfig: alpha outside (0,1]");
  }
  if (!std::isfinite(config.probe_fraction) || config.probe_fraction < 0.0 ||
      config.probe_fraction > 1.0) {
    throw std::invalid_argument("ProbingConfig: probe_fraction outside [0,1]");
  }
  if (!std::isfinite(config.probe_cap_mbps) || config.probe_cap_mbps < 0.0) {
    throw std::invalid_argument("ProbingConfig: bad probe_cap_mbps");
  }
  if (!std::isfinite(config.initial_mbps) || config.initial_mbps < 0.0) {
    throw std::invalid_argument("ProbingConfig: bad initial_mbps");
  }
}

BudgetSplit split_probe_budget(double total_mbps, double probe_mbps) {
  BudgetSplit split;
  const double total = std::max(0.0, total_mbps);
  split.probe_mbps = std::clamp(probe_mbps, 0.0, total);
  // Bit-exact remainder: content is *defined* as total - probe, so
  // the two portions always account for the whole budget.
  split.content_mbps = total - split.probe_mbps;
  return split;
}

ProbingThroughputEstimator::ProbingThroughputEstimator(ProbingConfig config)
    : config_(config), value_(config.initial_mbps) {
  validate(config_);
}

bool ProbingThroughputEstimator::probe_due(std::size_t slot) const {
  return slot > 0 && slot % config_.probe_period_slots == 0;
}

double ProbingThroughputEstimator::probe_budget_mbps() const {
  return std::min(config_.probe_cap_mbps, config_.probe_fraction * value_);
}

void ProbingThroughputEstimator::observe(double mbps, double alpha) {
  if (!std::isfinite(mbps)) return;  // a corrupt measurement is no measurement
  const double sample = std::max(0.0, mbps);
  value_ += alpha * (sample - value_);
  ++count_;
}

void ProbingThroughputEstimator::observe_passive(double mbps) {
  observe(mbps, config_.alpha_passive);
}

void ProbingThroughputEstimator::observe_probe(double mbps) {
  observe(mbps, config_.alpha_probe);
  ++probe_count_;
}

void ProbingThroughputEstimator::restore(double mbps, std::size_t count) {
  if (!std::isfinite(mbps) || mbps < 0.0) {
    throw std::invalid_argument("ProbingThroughputEstimator: invalid restore");
  }
  value_ = mbps;
  count_ = count;
}

double apply_stale_hold(double estimate_mbps, std::size_t silent_slots,
                        const StaleHoldConfig& config) {
  if (silent_slots <= config.hold_slots) return estimate_mbps;
  const double decayed =
      estimate_mbps *
      std::pow(config.decay_per_slot,
               static_cast<double>(silent_slots - config.hold_slots));
  return std::max(std::min(estimate_mbps, config.floor_mbps), decayed);
}

}  // namespace cvr::net
