#include "src/net/estimators.h"

#include <algorithm>
#include <stdexcept>

#include "src/net/mm1.h"
#include "src/util/units.h"

namespace cvr::net {

EmaThroughputEstimator::EmaThroughputEstimator(double alpha,
                                               double initial_mbps)
    : alpha_(alpha), value_(initial_mbps) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("EmaThroughputEstimator: alpha out of (0,1]");
  }
}

void EmaThroughputEstimator::observe(double mbps) {
  if (mbps < 0.0) {
    throw std::invalid_argument("EmaThroughputEstimator: negative sample");
  }
  value_ += alpha_ * (mbps - value_);
  ++count_;
}

DelayPredictor::DelayPredictor(std::size_t history) : poly_(2, history) {}

void DelayPredictor::observe(double rate_mbps, double delay_ms) {
  if (rate_mbps < 0.0 || delay_ms < 0.0) {
    throw std::invalid_argument("DelayPredictor: negative sample");
  }
  poly_.add(rate_mbps, delay_ms);
}

double DelayPredictor::predict_ms(double rate_mbps, double bandwidth_mbps) {
  if (!trained()) {
    // Cold start: analytic M/M/1 in slot-delay units scaled to ms.
    return mm1_delay(rate_mbps, bandwidth_mbps) * cvr::kSlotMillis;
  }
  return std::max(0.0, poly_.predict(rate_mbps));
}

bool DelayPredictor::trained() const {
  return poly_.size() >= 8;  // enough samples for a stable quadratic
}

}  // namespace cvr::net
