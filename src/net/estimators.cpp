#include "src/net/estimators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/net/mm1.h"
#include "src/util/units.h"

namespace cvr::net {

EmaThroughputEstimator::EmaThroughputEstimator(double alpha,
                                               double initial_mbps)
    : alpha_(alpha), value_(initial_mbps) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("EmaThroughputEstimator: alpha out of (0,1]");
  }
}

void EmaThroughputEstimator::observe(double mbps) {
  if (!std::isfinite(mbps)) return;  // a corrupt measurement is no measurement
  const double sample = std::max(0.0, mbps);
  value_ += alpha_ * (sample - value_);
  ++count_;
}

void EmaThroughputEstimator::restore(double mbps, std::size_t count) {
  if (!std::isfinite(mbps) || mbps < 0.0) {
    throw std::invalid_argument("EmaThroughputEstimator: invalid restore");
  }
  value_ = mbps;
  count_ = count;
}

DelayPredictor::DelayPredictor(std::size_t history) : poly_(2, history) {}

void DelayPredictor::observe(double rate_mbps, double delay_ms) {
  if (!std::isfinite(rate_mbps) || !std::isfinite(delay_ms)) return;
  poly_.add(std::max(0.0, rate_mbps), std::max(0.0, delay_ms));
}

double DelayPredictor::predict_ms(double rate_mbps, double bandwidth_mbps) {
  if (!trained()) {
    // Cold start: analytic M/M/1 in slot-delay units scaled to ms.
    return mm1_delay(rate_mbps, bandwidth_mbps) * cvr::kSlotMillis;
  }
  return std::max(0.0, poly_.predict(rate_mbps));
}

bool DelayPredictor::trained() const {
  return poly_.size() >= 8;  // enough samples for a stable quadratic
}

double apply_stale_hold(double estimate_mbps, std::size_t silent_slots,
                        const StaleHoldConfig& config) {
  if (silent_slots <= config.hold_slots) return estimate_mbps;
  const double decayed =
      estimate_mbps *
      std::pow(config.decay_per_slot,
               static_cast<double>(silent_slots - config.hold_slots));
  return std::max(std::min(estimate_mbps, config.floor_mbps), decayed);
}

}  // namespace cvr::net
