#include "src/content/hevc_process.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cvr::content {

void validate(const HevcProcessConfig& config) {
  if (config.gop_length == 0) {
    throw std::invalid_argument("HevcProcessConfig: zero gop_length");
  }
  if (!std::isfinite(config.i_frame_ratio) || config.i_frame_ratio < 1.0) {
    throw std::invalid_argument("HevcProcessConfig: i_frame_ratio < 1");
  }
  if (!std::isfinite(config.size_sigma) || config.size_sigma < 0.0) {
    throw std::invalid_argument("HevcProcessConfig: bad size_sigma");
  }
  if (!std::isfinite(config.burst_rho) || config.burst_rho < 0.0 ||
      config.burst_rho >= 1.0) {
    throw std::invalid_argument("HevcProcessConfig: burst_rho outside [0,1)");
  }
  if (!std::isfinite(config.min_multiplier) ||
      !std::isfinite(config.max_multiplier) || config.min_multiplier <= 0.0 ||
      config.min_multiplier > config.max_multiplier) {
    throw std::invalid_argument("HevcProcessConfig: bad multiplier clamp");
  }
}

double hevc_structural_multiplier(const HevcProcessConfig& config,
                                  std::size_t frame_in_gop) {
  const double g = static_cast<double>(config.gop_length);
  const double r = config.i_frame_ratio;
  // I = R*G/(R+G-1), P = G/(R+G-1): the GoP mean
  // (I + (G-1)*P)/G = (R + G - 1) / (R + G - 1) = 1 exactly.
  const double denom = r + g - 1.0;
  return frame_in_gop % config.gop_length == 0 ? r * g / denom : g / denom;
}

HevcFrameProcess::HevcFrameProcess(HevcProcessConfig config, std::uint64_t seed)
    : config_(config), rng_(seed ^ 0x48E5Cull) {
  validate(config_);
}

double HevcFrameProcess::step() {
  const double rho = config_.burst_rho;
  const double sigma = config_.size_sigma;
  // AR(1) in the log domain with stationary std-dev sigma; the
  // -sigma^2/2 offset centres the lognormal jitter's mean near 1.
  const double innovation_sigma =
      sigma * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  log_jitter_ = rho * log_jitter_ + rng_.normal(0.0, innovation_sigma);
  const double jitter = std::exp(log_jitter_ - 0.5 * sigma * sigma);
  const double structural =
      hevc_structural_multiplier(config_, frame_ % config_.gop_length);
  ++frame_;
  multiplier_ = std::clamp(structural * jitter, config_.min_multiplier,
                           config_.max_multiplier);
  return multiplier_;
}

}  // namespace cvr::content
