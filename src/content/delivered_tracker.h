// Server-side record of delivered tiles.
//
// Section V: "the server records the tiles that have already been
// delivered and will not transmit the same tiles again" — populated by
// client ACKs over TCP — and "after that [a release ACK], the server will
// retransmit the tiles if they are requested again."
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/content/tile.h"

namespace cvr::content {

class DeliveredTileTracker {
 public:
  /// True iff the tile must be (re)transmitted, i.e. the server has no
  /// delivery ACK on record for it.
  bool needs_transmit(VideoId id) const { return !delivered_.contains(id); }

  /// Processes a delivery ACK.
  void mark_delivered(VideoId id) { delivered_.insert(id); }

  /// Processes a batch of release ACKs: those tiles become
  /// retransmittable.
  void mark_released(const std::vector<VideoId>& ids);

  /// Filters a request set down to the tiles that actually need sending.
  std::vector<VideoId> filter_needed(const std::vector<VideoId>& request) const;

  std::size_t delivered_count() const { return delivered_.size(); }

 private:
  std::unordered_set<VideoId> delivered_;
};

}  // namespace cvr::content
