// Tile identity and video-ID indexing.
//
// Section V: the panoramic scene is projected to an equirectangular
// texture and split into four tiles (Fig. 5); "all the tiles will be
// indexed by a video ID corresponding to their position, tile ID, and
// quality. We only need to search the video ID during the runtime."
// Section VI: the scene is a grid world at 5 cm granularity.
#pragma once

#include <cstdint>
#include <string>

#include "src/content/quality.h"

namespace cvr::content {

inline constexpr int kTilesPerFrame = 4;  ///< 2 x 2 split (Fig. 5).
inline constexpr double kGridCellMeters = 0.05;

/// Position in the grid world, in cells.
struct GridCell {
  std::int32_t gx = 0;
  std::int32_t gy = 0;

  friend bool operator==(const GridCell&, const GridCell&) = default;
};

/// Quantises metric coordinates to a grid cell.
GridCell cell_for_position(double x_m, double y_m);

/// Identity of one encoded tile.
struct TileKey {
  GridCell cell;
  int tile_index = 0;      ///< 0..3, see equirect.h for the layout.
  QualityLevel level = 1;  ///< 1..kNumQualityLevels.

  friend bool operator==(const TileKey&, const TileKey&) = default;
};

/// Packed 64-bit video ID. Layout (LSB to MSB):
///   bits 0..2   quality level (1..6)
///   bits 3..4   tile index (0..3)
///   bits 5..28  gy biased by 2^23
///   bits 29..52 gx biased by 2^23
using VideoId = std::uint64_t;

/// Packs a tile key. Throws std::out_of_range if the key does not fit
/// (|g| >= 2^23, bad tile index, or invalid level).
VideoId pack_video_id(const TileKey& key);

/// Inverse of pack_video_id.
TileKey unpack_video_id(VideoId id);

/// Debug representation, e.g. "(12,-3)#2@q5".
std::string to_string(const TileKey& key);

}  // namespace cvr::content
