// Server-side tile cache.
//
// Section V: "the server will hold a buffer in the memory during the
// runtime to cache some of the tiles ... the server only needs to cache
// the tiles within a range of the user's current position and dynamically
// adjust the cached content corresponding to the user's movement."
//
// We model it as an LRU cache of video IDs with a position-window
// prefetch: advance(user position) pulls every tile within the window
// into the cache so subsequent lookups are hits; anything the window has
// left behind ages out by LRU.
//
// Representation (docs/performance.md): advance() touches every tile of
// every cell in the window — thousands of LRU updates per cell change —
// so a per-id structure (std::list + std::unordered_map, or any flat
// hash keyed by tile id) pays one random cache-line access per tile and
// dominated the fleet's content_fetch phase. The cache is instead keyed
// by CELL: one open-addressing probe finds a cell block holding the
// monotonically increasing touch ticks of all kTilesPerFrame x
// kNumQualityLevels tile ids contiguously, so re-stamping a whole cell
// is one probe plus a short sequential write. Recency is tracked by a
// FIFO ring of stamps; ticks only grow, so the ring is sorted by
// construction and eviction pops stamps from the front, skipping stale
// ones (id re-touched or evicted since). A whole-cell touch pushes a
// single RANGE stamp covering its 24 consecutive ticks with a cursor
// that eviction consumes id by id. The policy is the exact per-id LRU —
// every tile touch gets a unique tick, the eviction victim is always
// the live id with the smallest tick, and insertions interleave with
// evictions in the same order as a naive per-id implementation (the
// tests pin hits/misses/size/eviction behavior).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/content/tile.h"

namespace cvr::content {

struct ServerCacheConfig {
  std::size_t capacity_tiles = 20000;
  std::int32_t window_radius_cells = 4;  ///< +-20 cm around the user.
};

class ServerTileCache {
 public:
  explicit ServerTileCache(ServerCacheConfig config = {});

  const ServerCacheConfig& config() const { return config_; }

  /// Prefetches all tiles (all indices, all levels) for cells within the
  /// window around `center`. Bounded by the scene via the caller passing
  /// only valid cells; the cache itself accepts any key.
  void advance(const GridCell& center);

  /// Looks a tile up; a hit refreshes recency. A miss simulates the disk
  /// swap the paper avoids (counted, then inserted).
  bool lookup(VideoId id);

  std::size_t size() const { return live_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const;

 private:
  /// Tile ids per cell block: every (tile index, level) combination.
  static constexpr int kIdsPerBlock = kTilesPerFrame * kNumQualityLevels;
  static constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;

  /// All of one cell's tile ticks, contiguous. tick 0 = id not resident.
  struct Block {
    std::uint64_t ticks[kIdsPerBlock] = {};
    std::uint64_t key = 0;    ///< Packed cell, for table maintenance.
    std::uint32_t live = 0;   ///< Resident ids in this block.
  };

  /// Open-addressing table entry mapping a packed cell to its block.
  struct TableEntry {
    std::uint64_t key = 0;
    std::uint32_t block = 0;
    std::uint32_t state = 0;  ///< 0 empty, 1 tombstone, 2 live.
  };

  /// One recency stamp: blocks_[block].ticks[begin..end) held the
  /// consecutive ticks tick, tick+1, ... when pushed. Offsets whose
  /// tick has changed since (re-touch or eviction) are stale and
  /// skipped; `begin`/`tick` advance as eviction consumes the range.
  struct Stamp {
    std::uint64_t tick = 0;
    std::uint32_t block = 0;
    std::uint8_t begin = 0;
    std::uint8_t end = 0;
  };

  static std::uint64_t block_key(const GridCell& cell);

  std::uint32_t find_block(std::uint64_t key) const;
  std::uint32_t find_or_create_block(std::uint64_t key);
  /// Touches one id (offset within its block): re-stamp on hit, insert
  /// plus capacity eviction on a newly resident id.
  void touch_one(std::uint32_t block, int offset);
  /// Evicts the live id with the smallest tick (front of the ring,
  /// skipping stale stamps).
  void evict_lru();
  /// Returns the block's tile ids to the free list and tombstones its
  /// table entry. Ticks are zeroed so outstanding stamps go stale.
  void free_block(std::uint32_t block);
  /// Drops fully stale stamps in place (the ring stays tick-sorted).
  void compact_ring();
  void maybe_compact_ring();
  /// Re-places all live table entries into `new_size` slots (power of
  /// two), clearing tombstones. Stamps hold block indices, not table
  /// slots, so the ring is unaffected.
  void rehash_table(std::size_t new_size);

  ServerCacheConfig config_;
  std::vector<TableEntry> table_;  // power-of-two open addressing
  std::vector<Block> blocks_;      // block pool; indices are stable
  std::vector<std::uint32_t> free_blocks_;
  std::vector<Stamp> ring_;        // FIFO of stamps, tick-ascending
  std::size_t ring_head_ = 0;
  std::size_t live_ = 0;           // resident tile ids
  std::size_t live_blocks_ = 0;
  std::size_t tombstones_ = 0;
  std::uint64_t next_tick_ = 1;    // 0 marks "not resident"
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cvr::content
