// Server-side tile cache.
//
// Section V: "the server will hold a buffer in the memory during the
// runtime to cache some of the tiles ... the server only needs to cache
// the tiles within a range of the user's current position and dynamically
// adjust the cached content corresponding to the user's movement."
//
// We model it as an LRU cache of video IDs with a position-window
// prefetch: advance(user position) pulls every tile within the window
// into the cache so subsequent lookups are hits; anything the window has
// left behind ages out by LRU.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>

#include "src/content/tile.h"

namespace cvr::content {

struct ServerCacheConfig {
  std::size_t capacity_tiles = 20000;
  std::int32_t window_radius_cells = 4;  ///< +-20 cm around the user.
};

class ServerTileCache {
 public:
  explicit ServerTileCache(ServerCacheConfig config = {});

  const ServerCacheConfig& config() const { return config_; }

  /// Prefetches all tiles (all indices, all levels) for cells within the
  /// window around `center`. Bounded by the scene via the caller passing
  /// only valid cells; the cache itself accepts any key.
  void advance(const GridCell& center);

  /// Looks a tile up; a hit refreshes recency. A miss simulates the disk
  /// swap the paper avoids (counted, then inserted).
  bool lookup(VideoId id);

  std::size_t size() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const;

 private:
  void touch_or_insert(VideoId id);

  ServerCacheConfig config_;
  std::list<VideoId> lru_;  // front = most recent
  std::unordered_map<VideoId, std::list<VideoId>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cvr::content
