// HEVC frame-size process (docs/workloads.md).
//
// The content DB prices a (cell, tile, level) at the smooth CRF rate
// function f_c^R(q) — a *point estimate* of the encoder's mean output.
// Real HEVC traffic is nothing like that smooth: a GoP opens with an
// I-frame several times the mean size, the P-frames that follow are
// correspondingly smaller, and per-frame sizes jitter lognormally with
// burst correlation across consecutive frames ("Evaluating Wi-Fi
// Performance for VR Streaming: A Study on Realistic HEVC Video
// Traffic", PAPERS.md).
//
// HevcFrameProcess models that as a per-slot *size multiplier* applied
// on top of the CRF mean:
//   multiplier(t) = structural(t mod G) * jitter(t)
// where the structural I/P pattern is exactly mean-1 over a GoP
//   I = R*G / (R + G - 1),   P = G / (R + G - 1)
// (R = i_frame_ratio, G = gop_length; property content.hevc_gop_mean
// pins the per-GoP mean to 1 within 1e-9), and jitter is
// exp(z - sigma^2/2) with z an AR(1) log-domain state of stationary
// std-dev sigma — approximately mean-1, burst-correlated with
// coefficient burst_rho.
//
// With enabled = false (the default) no process is constructed and no
// RNG stream is consumed: the allocator sees the smooth CRF means,
// bit-identical to the pre-pack build (guard-tested).
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/util/rng.h"

namespace cvr::content {

struct HevcProcessConfig {
  /// Master switch. Off = the smooth CRF point estimate, bit-identical.
  bool enabled = false;
  /// Frames per GoP (one I-frame then gop_length - 1 P-frames).
  std::size_t gop_length = 32;
  /// Mean I-frame size over mean P-frame size. Must be >= 1.
  double i_frame_ratio = 4.0;
  /// Log-domain std-dev of the per-frame size jitter.
  double size_sigma = 0.25;
  /// AR(1) coefficient of the jitter across consecutive frames
  /// (rate-control bursts). Must lie in [0, 1).
  double burst_rho = 0.6;
  /// Clamp bounds on the final multiplier (a corrupt config can never
  /// emit a zero or unbounded frame).
  double min_multiplier = 0.05;
  double max_multiplier = 8.0;
};

/// Throws std::invalid_argument on gop_length == 0, i_frame_ratio < 1,
/// negative/non-finite size_sigma, burst_rho outside [0, 1), or clamp
/// bounds with min <= 0 or min > max.
void validate(const HevcProcessConfig& config);

/// Pure: the structural (deterministic) size multiplier of frame
/// `frame_in_gop` (0 = the I-frame). The mean over one GoP is exactly 1.
double hevc_structural_multiplier(const HevcProcessConfig& config,
                                  std::size_t frame_in_gop);

/// One tile stream's frame-size process. Deterministic in (config,
/// seed); consumes exactly one normal draw per step().
class HevcFrameProcess {
 public:
  HevcFrameProcess(HevcProcessConfig config, std::uint64_t seed);

  /// Advances one frame; returns the size multiplier for the new frame.
  double step();

  /// The multiplier of the current frame (1.0 before the first step()).
  double current() const { return multiplier_; }

  /// Frames emitted so far.
  std::size_t frames() const { return frame_; }

 private:
  HevcProcessConfig config_;
  cvr::Rng rng_;
  std::size_t frame_ = 0;
  double log_jitter_ = 0.0;
  double multiplier_ = 1.0;
};

}  // namespace cvr::content
