#include "src/content/cubemap.h"

#include <algorithm>
#include <cmath>

namespace cvr::content {

namespace {

constexpr double kDeg = M_PI / 180.0;

std::array<double, 3> direction(double yaw_deg, double pitch_deg) {
  const double yaw = yaw_deg * kDeg;
  const double pitch = pitch_deg * kDeg;
  return {std::cos(pitch) * std::cos(yaw), std::cos(pitch) * std::sin(yaw),
          std::sin(pitch)};
}

/// Faces hit by sampling the window on a `steps x steps` grid.
std::vector<int> faces_for_window(double yaw, double pitch, double half_h,
                                  double half_v, int steps) {
  bool hit[kCubeFaces] = {};
  for (int i = 0; i < steps; ++i) {
    for (int j = 0; j < steps; ++j) {
      const double dy = -half_h + 2.0 * half_h * i / (steps - 1);
      const double dp = -half_v + 2.0 * half_v * j / (steps - 1);
      const double sample_pitch = std::clamp(pitch + dp, -90.0, 90.0);
      const double sample_yaw = cvr::motion::wrap_degrees(yaw + dy);
      const CubeCoord c = project_cubemap(sample_yaw, sample_pitch);
      hit[static_cast<int>(c.face)] = true;
    }
  }
  std::vector<int> faces;
  for (int f = 0; f < kCubeFaces; ++f) {
    if (hit[f]) faces.push_back(f);
  }
  return faces;
}

}  // namespace

CubeCoord project_cubemap(double yaw_deg, double pitch_deg) {
  const auto [x, y, z] = direction(yaw_deg, pitch_deg);
  const double ax = std::abs(x), ay = std::abs(y), az = std::abs(z);
  CubeCoord out;
  if (ax >= ay && ax >= az) {
    if (x >= 0) {
      out.face = CubeFace::kFront;
      out.u = y / ax;
      out.v = z / ax;
    } else {
      out.face = CubeFace::kBack;
      out.u = -y / ax;
      out.v = z / ax;
    }
  } else if (ay >= ax && ay >= az) {
    if (y >= 0) {
      out.face = CubeFace::kRight;
      out.u = -x / ay;
      out.v = z / ay;
    } else {
      out.face = CubeFace::kLeft;
      out.u = x / ay;
      out.v = z / ay;
    }
  } else {
    if (z >= 0) {
      out.face = CubeFace::kUp;
      out.u = y / az;
      out.v = -x / az;
    } else {
      out.face = CubeFace::kDown;
      out.u = y / az;
      out.v = x / az;
    }
  }
  return out;
}

std::array<double, 2> unproject_cubemap(const CubeCoord& coord) {
  double x = 0.0, y = 0.0, z = 0.0;
  switch (coord.face) {
    case CubeFace::kFront:
      x = 1.0;
      y = coord.u;
      z = coord.v;
      break;
    case CubeFace::kBack:
      x = -1.0;
      y = -coord.u;
      z = coord.v;
      break;
    case CubeFace::kRight:
      y = 1.0;
      x = -coord.u;
      z = coord.v;
      break;
    case CubeFace::kLeft:
      y = -1.0;
      x = coord.u;
      z = coord.v;
      break;
    case CubeFace::kUp:
      z = 1.0;
      y = coord.u;
      x = -coord.v;
      break;
    case CubeFace::kDown:
      z = -1.0;
      y = coord.u;
      x = coord.v;
      break;
  }
  const double norm = std::sqrt(x * x + y * y + z * z);
  const double pitch = std::asin(z / norm) / kDeg;
  const double yaw = std::atan2(y, x) / kDeg;
  return {cvr::motion::wrap_degrees(yaw), std::clamp(pitch, -90.0, 90.0)};
}

std::vector<int> faces_for_view(const cvr::motion::FovSpec& spec,
                                const cvr::motion::Pose& view) {
  const double half_h = spec.horizontal_deg / 2.0 + spec.margin_deg;
  const double half_v = spec.vertical_deg / 2.0 + spec.margin_deg;
  // 9x9 sampling: at the library's FoV scales (>= 40 degrees per side)
  // a cube face subtends >= 45 degrees, so a <= ~15-degree sampling
  // pitch cannot step over a face.
  return faces_for_window(view.yaw, view.pitch, half_h, half_v, 9);
}

bool faces_cover(const std::vector<int>& delivered,
                 const cvr::motion::FovSpec& spec,
                 const cvr::motion::Pose& actual) {
  const auto needed = faces_for_window(actual.yaw, actual.pitch,
                                       spec.horizontal_deg / 2.0,
                                       spec.vertical_deg / 2.0, 9);
  for (int face : needed) {
    if (std::find(delivered.begin(), delivered.end(), face) ==
        delivered.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace cvr::content
