#include "src/content/rate_function.h"

#include <cmath>
#include <stdexcept>

#include "src/util/rng.h"

namespace cvr::content {

bool RateFunction::is_convex_increasing() const {
  double prev_rate = rate(1);
  if (prev_rate <= 0.0) return false;
  double prev_inc = -1.0;
  for (QualityLevel q = 2; q <= kNumQualityLevels; ++q) {
    const double r = rate(q);
    const double inc = r - prev_rate;
    if (inc <= 0.0) return false;                    // increasing
    if (prev_inc >= 0.0 && inc + 1e-12 < prev_inc) return false;  // convex
    prev_rate = r;
    prev_inc = inc;
  }
  return true;
}

CrfRateFunction::CrfRateFunction(double base_mbps, double growth, double scale)
    : base_(base_mbps), growth_(growth), scale_(scale) {
  if (base_mbps <= 0.0 || growth <= 1.0 || scale <= 0.0) {
    throw std::invalid_argument(
        "CrfRateFunction: need base > 0, growth > 1, scale > 0");
  }
}

double CrfRateFunction::rate(QualityLevel q) const {
  if (!is_valid_level(q)) {
    throw std::out_of_range("CrfRateFunction::rate: invalid level");
  }
  return scale_ * base_ * std::pow(growth_, q - 1);
}

TableRateFunction::TableRateFunction(std::vector<double> rates_mbps)
    : rates_(std::move(rates_mbps)) {
  if (rates_.size() != static_cast<std::size_t>(kNumQualityLevels)) {
    throw std::invalid_argument("TableRateFunction: wrong number of levels");
  }
  for (std::size_t i = 1; i < rates_.size(); ++i) {
    if (rates_[i] <= rates_[i - 1]) {
      throw std::invalid_argument("TableRateFunction: not increasing");
    }
    if (i >= 2 &&
        rates_[i] - rates_[i - 1] + 1e-12 < rates_[i - 1] - rates_[i - 2]) {
      throw std::invalid_argument("TableRateFunction: not convex");
    }
  }
  if (rates_.front() <= 0.0) {
    throw std::invalid_argument("TableRateFunction: non-positive rate");
  }
}

double TableRateFunction::rate(QualityLevel q) const {
  if (!is_valid_level(q)) {
    throw std::out_of_range("TableRateFunction::rate: invalid level");
  }
  return rates_[static_cast<std::size_t>(q - 1)];
}

ContentRateModel::ContentRateModel(Config config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  if (config_.base_mbps <= 0.0 || config_.growth <= 1.0 ||
      config_.scale_sigma < 0.0 || config_.growth_jitter < 0.0 ||
      config_.growth_jitter >= config_.growth - 1.0) {
    throw std::invalid_argument("ContentRateModel: invalid config");
  }
}

CrfRateFunction ContentRateModel::for_content(std::uint64_t content_id) const {
  cvr::SplitMix64 mixer(seed_ ^ (content_id * 0x9E3779B97F4A7C15ull + 0x1234));
  cvr::Rng rng(mixer.next());
  const double scale = rng.lognormal(0.0, config_.scale_sigma);
  const double growth =
      config_.growth + rng.uniform(-config_.growth_jitter, config_.growth_jitter);
  return CrfRateFunction(config_.base_mbps, growth, scale);
}

}  // namespace cvr::content
