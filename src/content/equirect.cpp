#include "src/content/equirect.h"

#include <algorithm>
#include <cmath>

#include "src/content/tile.h"

namespace cvr::content {

namespace {

/// Yaw interval [lo, hi] (degrees, possibly crossing +-180) overlap test
/// against a tile column: column 0 covers yaw [-180, 0), column 1 covers
/// [0, 180). Returns the columns overlapped.
void columns_for_yaw_window(double center, double half_span, bool out[2]) {
  if (half_span >= 90.0) {  // window spans at least half the panorama
    out[0] = out[1] = true;
    return;
  }
  out[0] = out[1] = false;
  // Sample the window ends and centre; a contiguous arc of < 180 degrees
  // overlaps a 180-degree column iff one of its endpoints or the column
  // boundary lies inside — testing endpoints plus boundaries is exact.
  const double lo = center - half_span;
  const double hi = center + half_span;
  auto mark = [&](double yaw) {
    const double w = cvr::motion::wrap_degrees(yaw);
    out[w < 0.0 ? 0 : 1] = true;
  };
  mark(lo);
  mark(hi);
  mark(center);
  // Column boundaries at 0 and 180(-180): inside the arc?
  auto contains = [&](double boundary) {
    const double d = cvr::motion::angular_difference(boundary, center);
    return std::abs(d) <= half_span;
  };
  if (contains(0.0)) out[0] = out[1] = true;
  if (contains(180.0)) out[0] = out[1] = true;
}

void rows_for_pitch_window(double center, double half_span, bool out[2]) {
  const double top = std::min(90.0, center + half_span);
  const double bottom = std::max(-90.0, center - half_span);
  out[0] = top > 0.0;      // row 0 = upper hemisphere (pitch > 0)
  out[1] = bottom < 0.0;   // row 1 = lower hemisphere
  if (top == 0.0 && bottom == 0.0) out[0] = out[1] = true;  // degenerate
}

int tiles_for_window(double yaw, double pitch, double half_h, double half_v,
                     int* out) {
  bool cols[2];
  bool rows[2];
  columns_for_yaw_window(yaw, half_h, cols);
  rows_for_pitch_window(pitch, half_v, rows);
  int count = 0;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      if (rows[r] && cols[c]) out[count++] = r * 2 + c;
    }
  }
  return count;
}

}  // namespace

TexCoord project_equirect(double yaw_deg, double pitch_deg) {
  const double yaw = cvr::motion::wrap_degrees(yaw_deg);
  const double pitch = std::clamp(pitch_deg, -90.0, 90.0);
  TexCoord tc;
  tc.u = (yaw + 180.0) / 360.0;
  if (tc.u >= 1.0) tc.u -= 1.0;
  tc.v = (90.0 - pitch) / 180.0;
  return tc;
}

std::array<double, 2> unproject_equirect(const TexCoord& tc) {
  const double yaw = tc.u * 360.0 - 180.0;
  const double pitch = 90.0 - tc.v * 180.0;
  return {cvr::motion::wrap_degrees(yaw), std::clamp(pitch, -90.0, 90.0)};
}

std::vector<int> tiles_for_view(const cvr::motion::FovSpec& spec,
                                const cvr::motion::Pose& view) {
  int out[kTilesPerFrame];
  const int count = tiles_for_view(spec, view, out);
  return std::vector<int>(out, out + count);
}

int tiles_for_view(const cvr::motion::FovSpec& spec,
                   const cvr::motion::Pose& view, int* out) {
  const double half_h = spec.horizontal_deg / 2.0 + spec.margin_deg;
  const double half_v = spec.vertical_deg / 2.0 + spec.margin_deg;
  return tiles_for_window(view.yaw, view.pitch, half_h, half_v, out);
}

bool tiles_cover(const std::vector<int>& delivered,
                 const cvr::motion::FovSpec& spec,
                 const cvr::motion::Pose& actual) {
  int needed[kTilesPerFrame];
  const int count = tiles_for_window(actual.yaw, actual.pitch,
                                     spec.horizontal_deg / 2.0,
                                     spec.vertical_deg / 2.0, needed);
  for (int i = 0; i < count; ++i) {
    if (std::find(delivered.begin(), delivered.end(), needed[i]) ==
        delivered.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace cvr::content
