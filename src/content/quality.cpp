#include "src/content/quality.h"

// Header-only by design; this translation unit pins the static checks.

namespace cvr::content {

static_assert(crf_for_level(1) == 35 && crf_for_level(6) == 15,
              "level/CRF mapping must match Section VI");
static_assert(level_for_crf(23) == 4, "level_for_crf inverse");
static_assert(level_for_crf(16) == 0, "unknown CRF maps to 0");

}  // namespace cvr::content
