// Quality levels and their CRF encoding.
//
// Section VI: tiles are encoded at six CRF values {15, 19, 23, 27, 31, 35}
// indexed as quality levels {6, 5, 4, 3, 2, 1}: a *higher level* means a
// *lower CRF*, i.e. better visual quality and a larger bitrate.
#pragma once

#include <array>
#include <cstdint>

namespace cvr::content {

/// Quality level, 1 (worst) .. kNumQualityLevels (best). Level 0 is not a
/// valid selection; allocators start from level 1 as in Algorithm 1.
using QualityLevel = int;

inline constexpr int kNumQualityLevels = 6;

inline constexpr std::array<int, kNumQualityLevels> kCrfByLevel = {
    35, 31, 27, 23, 19, 15};  // index 0 <-> level 1

/// True iff q is a valid quality level.
constexpr bool is_valid_level(QualityLevel q) {
  return q >= 1 && q <= kNumQualityLevels;
}

/// CRF value used to encode a given quality level. Precondition: valid q.
constexpr int crf_for_level(QualityLevel q) { return kCrfByLevel[q - 1]; }

/// Inverse of crf_for_level; returns 0 if the CRF is not one of ours.
constexpr QualityLevel level_for_crf(int crf) {
  for (int q = 1; q <= kNumQualityLevels; ++q) {
    if (kCrfByLevel[q - 1] == crf) return q;
  }
  return 0;
}

}  // namespace cvr::content
