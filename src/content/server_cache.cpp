#include "src/content/server_cache.h"

#include <stdexcept>

namespace cvr::content {

ServerTileCache::ServerTileCache(ServerCacheConfig config) : config_(config) {
  if (config_.capacity_tiles == 0) {
    throw std::invalid_argument("ServerTileCache: zero capacity");
  }
}

void ServerTileCache::advance(const GridCell& center) {
  const std::int32_t r = config_.window_radius_cells;
  for (std::int32_t dx = -r; dx <= r; ++dx) {
    for (std::int32_t dy = -r; dy <= r; ++dy) {
      const GridCell cell{center.gx + dx, center.gy + dy};
      for (int tile = 0; tile < kTilesPerFrame; ++tile) {
        for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
          touch_or_insert(pack_video_id({cell, tile, q}));
        }
      }
    }
  }
}

bool ServerTileCache::lookup(VideoId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  touch_or_insert(id);
  return false;
}

double ServerTileCache::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void ServerTileCache::touch_or_insert(VideoId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(id);
  map_[id] = lru_.begin();
  if (map_.size() > config_.capacity_tiles) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace cvr::content
