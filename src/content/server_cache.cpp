#include "src/content/server_cache.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace cvr::content {

namespace {

/// Fibonacci hashing over the packed cell key; `size` is a power of two.
inline std::size_t slot_index(std::uint64_t key, std::size_t size) {
  return static_cast<std::size_t>(
      (key * 0x9E3779B97F4A7C15ull) >>
      (64 - std::countr_zero(static_cast<std::uint64_t>(size))));
}

constexpr std::size_t kMinTableSlots = 64;
constexpr std::uint32_t kStateEmpty = 0;
constexpr std::uint32_t kStateTombstone = 1;
constexpr std::uint32_t kStateLive = 2;

}  // namespace

ServerTileCache::ServerTileCache(ServerCacheConfig config) : config_(config) {
  if (config_.capacity_tiles == 0) {
    throw std::invalid_argument("ServerTileCache: zero capacity");
  }
  table_.assign(kMinTableSlots, TableEntry{});
}

std::uint64_t ServerTileCache::block_key(const GridCell& cell) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cell.gx))
          << 32) |
         static_cast<std::uint32_t>(cell.gy);
}

void ServerTileCache::advance(const GridCell& center) {
  // A whole-cell touch assigns kIdsPerBlock consecutive ticks in one
  // range stamp; a capacity below one block would let mid-range
  // evictions target ids of the range itself, so tiny capacities keep
  // one stamp per id (the naive schedule, exact by construction).
  const bool range_stamps = config_.capacity_tiles >=
                            static_cast<std::size_t>(kIdsPerBlock);
  const std::int32_t r = config_.window_radius_cells;
  for (std::int32_t dx = -r; dx <= r; ++dx) {
    for (std::int32_t dy = -r; dy <= r; ++dy) {
      const GridCell cell{center.gx + dx, center.gy + dy};
      const std::uint32_t bidx = find_or_create_block(block_key(cell));
      if (range_stamps) {
        ring_.push_back({next_tick_, bidx, 0,
                         static_cast<std::uint8_t>(kIdsPerBlock)});
      }
      Block& b = blocks_[bidx];
      for (int off = 0; off < kIdsPerBlock; ++off) {
        const bool newly = b.ticks[off] == 0;
        b.ticks[off] = next_tick_++;
        if (!range_stamps) {
          ring_.push_back({b.ticks[off], bidx,
                           static_cast<std::uint8_t>(off),
                           static_cast<std::uint8_t>(off + 1)});
        }
        if (newly) {
          ++b.live;
          ++live_;
          // Evicting here (not after the block) keeps the exact
          // insert/evict interleaving of a per-id LRU: a victim later
          // in this very block is evicted and then re-inserted when
          // the loop reaches it, exactly as the naive schedule would.
          while (live_ > config_.capacity_tiles) evict_lru();
        }
      }
      maybe_compact_ring();
    }
  }
}

bool ServerTileCache::lookup(VideoId id) {
  const TileKey tk = unpack_video_id(id);
  const int off = tk.tile_index * kNumQualityLevels + (tk.level - 1);
  const std::uint64_t key = block_key(tk.cell);
  const std::uint32_t bidx = find_block(key);
  if (bidx != kNoBlock && blocks_[bidx].ticks[off] != 0) {
    Block& b = blocks_[bidx];
    b.ticks[off] = next_tick_++;
    ring_.push_back({b.ticks[off], bidx, static_cast<std::uint8_t>(off),
                     static_cast<std::uint8_t>(off + 1)});
    ++hits_;
    maybe_compact_ring();
    return true;
  }
  ++misses_;
  touch_one(bidx != kNoBlock ? bidx : find_or_create_block(key), off);
  return false;
}

double ServerTileCache::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

std::uint32_t ServerTileCache::find_block(std::uint64_t key) const {
  const std::size_t mask = table_.size() - 1;
  for (std::size_t i = slot_index(key, table_.size());; i = (i + 1) & mask) {
    const TableEntry& e = table_[i];
    if (e.state == kStateEmpty) return kNoBlock;
    if (e.state == kStateLive && e.key == key) return e.block;
  }
}

std::uint32_t ServerTileCache::find_or_create_block(std::uint64_t key) {
  const std::size_t mask = table_.size() - 1;
  const std::size_t npos = table_.size();
  std::size_t insert_at = npos;
  std::size_t i = slot_index(key, table_.size());
  for (;; i = (i + 1) & mask) {
    TableEntry& e = table_[i];
    if (e.state == kStateEmpty) break;
    if (e.state == kStateTombstone) {
      if (insert_at == npos) insert_at = i;
      continue;
    }
    if (e.key == key) return e.block;
  }
  std::uint32_t bidx;
  if (!free_blocks_.empty()) {
    bidx = free_blocks_.back();
    free_blocks_.pop_back();
  } else {
    bidx = static_cast<std::uint32_t>(blocks_.size());
    blocks_.emplace_back();
  }
  blocks_[bidx].key = key;  // ticks already zero (fresh or free_block'd)
  if (insert_at != npos) {
    --tombstones_;
  } else {
    insert_at = i;
  }
  table_[insert_at] = {key, bidx, kStateLive};
  ++live_blocks_;
  // Keep the probe load factor (live + tombstones) at or under 1/2.
  if ((live_blocks_ + tombstones_) * 2 >= table_.size()) {
    std::size_t target = kMinTableSlots;
    while (target < 4 * live_blocks_) target <<= 1;
    rehash_table(target);
  }
  return bidx;
}

void ServerTileCache::touch_one(std::uint32_t block, int offset) {
  Block& b = blocks_[block];
  const bool newly = b.ticks[offset] == 0;
  b.ticks[offset] = next_tick_++;
  ring_.push_back({b.ticks[offset], block, static_cast<std::uint8_t>(offset),
                   static_cast<std::uint8_t>(offset + 1)});
  if (newly) {
    ++b.live;
    ++live_;
    while (live_ > config_.capacity_tiles) evict_lru();
  }
  maybe_compact_ring();
}

void ServerTileCache::evict_lru() {
  // Ticks only grow, so the ring is sorted: the first stamped offset
  // whose tick is unchanged is the least-recently-touched live id.
  // Every live id has a current stamp, so the scan always terminates.
  for (;;) {
    Stamp& st = ring_[ring_head_];
    Block& b = blocks_[st.block];
    std::uint64_t tick = st.tick;
    std::uint8_t off = st.begin;
    bool evicted = false;
    while (off < st.end) {
      if (b.ticks[off] == tick) {
        b.ticks[off] = 0;
        --b.live;
        --live_;
        evicted = true;
        ++off;
        ++tick;
        break;
      }
      ++off;
      ++tick;
    }
    st.begin = off;
    st.tick = tick;
    if (off >= st.end) ++ring_head_;
    if (evicted) {
      if (b.live == 0) free_block(st.block);
      return;
    }
  }
}

void ServerTileCache::free_block(std::uint32_t block) {
  Block& b = blocks_[block];
  std::fill(std::begin(b.ticks), std::end(b.ticks), 0);
  const std::size_t mask = table_.size() - 1;
  for (std::size_t i = slot_index(b.key, table_.size());; i = (i + 1) & mask) {
    TableEntry& e = table_[i];
    if (e.state == kStateLive && e.key == b.key) {
      e.state = kStateTombstone;
      break;
    }
  }
  --live_blocks_;
  ++tombstones_;
  free_blocks_.push_back(block);
}

void ServerTileCache::maybe_compact_ring() {
  // Live stamps number at most live_blocks_ (ranges) + live_ (singles),
  // so past this threshold at least half the span is stale and one
  // compaction pass amortizes to O(1) per touch.
  if (ring_.size() - ring_head_ > 2 * (live_blocks_ + live_) + 1024) {
    compact_ring();
  }
}

void ServerTileCache::compact_ring() {
  std::size_t out = 0;
  for (std::size_t i = ring_head_; i < ring_.size(); ++i) {
    const Stamp& st = ring_[i];
    const Block& b = blocks_[st.block];
    bool alive = false;
    std::uint64_t tick = st.tick;
    for (std::uint8_t off = st.begin; off < st.end; ++off, ++tick) {
      if (b.ticks[off] == tick) {
        alive = true;
        break;
      }
    }
    if (alive) ring_[out++] = st;
  }
  ring_.resize(out);
  ring_head_ = 0;
}

void ServerTileCache::rehash_table(std::size_t new_size) {
  const std::vector<TableEntry> old = std::move(table_);
  table_.assign(new_size, TableEntry{});
  const std::size_t mask = new_size - 1;
  for (const TableEntry& e : old) {
    if (e.state != kStateLive) continue;
    std::size_t i = slot_index(e.key, new_size);
    while (table_[i].state != kStateEmpty) i = (i + 1) & mask;
    table_[i] = e;
  }
  tombstones_ = 0;
}

}  // namespace cvr::content
