// Client-side tile buffer with threshold release.
//
// Section V ("Handling repetitive tiles"): the user cannot hold all
// received tiles in RAM; "we will release old tiles once the total number
// of tiles reaches the user-specific threshold ... The user also sends
// ACKs to let the server know when the tiles are released."
//
// insert() returns the batch of released video IDs so the caller can put
// them on the TCP ACK channel back to the server.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/content/tile.h"

namespace cvr::content {

class ClientTileBuffer {
 public:
  /// `threshold` is the device-dependent max number of resident tiles.
  explicit ClientTileBuffer(std::size_t threshold);

  /// Stores a tile; refreshes recency if already held. Returns the video
  /// IDs released (LRU order) to stay under the threshold — empty most of
  /// the time.
  std::vector<VideoId> insert(VideoId id);

  /// True iff the tile is currently resident (refreshes recency —
  /// displaying a tile counts as use).
  bool touch(VideoId id);

  bool contains(VideoId id) const { return map_.contains(id); }
  std::size_t size() const { return map_.size(); }
  std::size_t threshold() const { return threshold_; }
  std::uint64_t released_total() const { return released_total_; }

 private:
  std::size_t threshold_;
  std::list<VideoId> lru_;  // front = most recent
  std::unordered_map<VideoId, std::list<VideoId>::iterator> map_;
  std::uint64_t released_total_ = 0;
};

}  // namespace cvr::content
