#include "src/content/delivered_tracker.h"

namespace cvr::content {

void DeliveredTileTracker::mark_released(const std::vector<VideoId>& ids) {
  for (VideoId id : ids) delivered_.erase(id);
}

std::vector<VideoId> DeliveredTileTracker::filter_needed(
    const std::vector<VideoId>& request) const {
  std::vector<VideoId> needed;
  needed.reserve(request.size());
  for (VideoId id : request) {
    if (needs_transmit(id)) needed.push_back(id);
  }
  return needed;
}

}  // namespace cvr::content
