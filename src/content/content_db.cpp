#include "src/content/content_db.h"

#include <stdexcept>

#include "src/util/rng.h"
#include "src/util/units.h"

namespace cvr::content {

ContentDb::ContentDb(ContentDbConfig config)
    : config_(config), model_(config.rate_model, config.seed) {
  if (config_.grid_width <= 0 || config_.grid_height <= 0) {
    throw std::invalid_argument("ContentDbConfig: non-positive grid extent");
  }
}

bool ContentDb::contains(const GridCell& cell) const {
  return cell.gx >= 0 && cell.gx < config_.grid_width && cell.gy >= 0 &&
         cell.gy < config_.grid_height;
}

std::uint64_t ContentDb::content_id(const GridCell& cell) const {
  if (!contains(cell)) {
    throw std::out_of_range("ContentDb: cell outside scene");
  }
  return static_cast<std::uint64_t>(cell.gy) *
             static_cast<std::uint64_t>(config_.grid_width) +
         static_cast<std::uint64_t>(cell.gx);
}

CrfRateFunction ContentDb::frame_rate_function(const GridCell& cell) const {
  return model_.for_content(content_id(cell));
}

double ContentDb::tile_weight(const GridCell& cell, int tile_index) const {
  if (tile_index < 0 || tile_index >= kTilesPerFrame) {
    throw std::out_of_range("ContentDb: bad tile index");
  }
  // Deterministic per-(cell, tile) complexity draws, normalised within
  // the frame. Weights live in roughly [0.5, 1.5]/4 so no tile is
  // degenerate (the encoder always spends *something* on a quarter of
  // the panorama).
  const std::uint64_t id = content_id(cell);
  double raw[kTilesPerFrame];
  double total = 0.0;
  for (int tile = 0; tile < kTilesPerFrame; ++tile) {
    cvr::SplitMix64 mixer(config_.seed ^
                          (id * 31 + static_cast<std::uint64_t>(tile)) *
                              0x9E3779B97F4A7C15ull);
    const double unit =
        static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;  // [0,1)
    raw[tile] = 0.5 + unit;  // [0.5, 1.5)
    total += raw[tile];
  }
  return raw[tile_index] / total;
}

double ContentDb::tile_size_megabits(const TileKey& key) const {
  if (key.tile_index < 0 || key.tile_index >= kTilesPerFrame) {
    throw std::out_of_range("ContentDb: bad tile index");
  }
  const CrfRateFunction f = frame_rate_function(key.cell);
  // The frame rate splits across the four tiles by texture-complexity
  // weight; sizes are the slot-normalised megabits of one tile.
  const double frame_megabits = cvr::slot_rate_to_megabits(f.rate(key.level));
  return frame_megabits * tile_weight(key.cell, key.tile_index);
}

std::uint64_t ContentDb::entry_count() const {
  return static_cast<std::uint64_t>(config_.grid_width) *
         static_cast<std::uint64_t>(config_.grid_height) * kTilesPerFrame *
         kNumQualityLevels;
}

double ContentDb::estimated_store_gb() const {
  // Each (cell, level) entry stores one closed GOP (~10 frames, 1/6 s at
  // 60 FPS) that the runtime loops, so the per-entry bytes are the
  // stream rate times the GOP duration. This reproduces the magnitude of
  // the paper's 171 GB Office-scene store.
  constexpr double kGopSeconds = 1.0 / 6.0;
  double per_cell_megabits = 0.0;
  const CrfRateFunction nominal(config_.rate_model.base_mbps,
                                config_.rate_model.growth, 1.0);
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    per_cell_megabits += nominal.rate(q) * kGopSeconds;
  }
  const double cells = static_cast<double>(config_.grid_width) *
                       static_cast<double>(config_.grid_height);
  return cells * per_cell_megabits / 8.0 / 1024.0;  // Mb -> GB
}

}  // namespace cvr::content
