#include "src/content/content_db.h"

#include <stdexcept>

#include "src/util/rng.h"
#include "src/util/units.h"

namespace cvr::content {

ContentDb::ContentDb(ContentDbConfig config)
    : config_(config), model_(config.rate_model, config.seed) {
  if (config_.grid_width <= 0 || config_.grid_height <= 0) {
    throw std::invalid_argument("ContentDbConfig: non-positive grid extent");
  }
}

bool ContentDb::contains(const GridCell& cell) const {
  return cell.gx >= 0 && cell.gx < config_.grid_width && cell.gy >= 0 &&
         cell.gy < config_.grid_height;
}

std::uint64_t ContentDb::content_id(const GridCell& cell) const {
  if (!contains(cell)) {
    throw std::out_of_range("ContentDb: cell outside scene");
  }
  return static_cast<std::uint64_t>(cell.gy) *
             static_cast<std::uint64_t>(config_.grid_width) +
         static_cast<std::uint64_t>(cell.gx);
}

CrfRateFunction ContentDb::frame_rate_function(const GridCell& cell) const {
  return model_.for_content(content_id(cell));
}

double ContentDb::tile_weight(const GridCell& cell, int tile_index) const {
  if (tile_index < 0 || tile_index >= kTilesPerFrame) {
    throw std::out_of_range("ContentDb: bad tile index");
  }
  // Deterministic per-(cell, tile) complexity draws, normalised within
  // the frame. Weights live in roughly [0.5, 1.5]/4 so no tile is
  // degenerate (the encoder always spends *something* on a quarter of
  // the panorama).
  const std::uint64_t id = content_id(cell);
  double raw[kTilesPerFrame];
  double total = 0.0;
  for (int tile = 0; tile < kTilesPerFrame; ++tile) {
    cvr::SplitMix64 mixer(config_.seed ^
                          (id * 31 + static_cast<std::uint64_t>(tile)) *
                              0x9E3779B97F4A7C15ull);
    const double unit =
        static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;  // [0,1)
    raw[tile] = 0.5 + unit;  // [0.5, 1.5)
    total += raw[tile];
  }
  return raw[tile_index] / total;
}

double ContentDb::tile_size_megabits(const TileKey& key) const {
  if (key.tile_index < 0 || key.tile_index >= kTilesPerFrame) {
    throw std::out_of_range("ContentDb: bad tile index");
  }
  if (!is_valid_level(key.level)) {
    throw std::out_of_range("ContentDb: bad quality level");
  }
  // The frame rate splits across the four tiles by texture-complexity
  // weight; sizes are the slot-normalised megabits of one tile.
  const CellContent& cc = cell_content(key.cell);
  return cc.frame_megabits[static_cast<std::size_t>(key.level - 1)] *
         cc.weight[static_cast<std::size_t>(key.tile_index)];
}

const CellContent& ContentDb::cell_content(const GridCell& cell) const {
  const std::uint64_t id = content_id(cell);  // throws outside the scene
  const auto it = cell_cache_.find(id);
  if (it != cell_cache_.end()) return it->second;
  CellContent cc;
  const CrfRateFunction f = model_.for_content(id);
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    const auto idx = static_cast<std::size_t>(q - 1);
    cc.rate[idx] = f.rate(q);
    cc.frame_megabits[idx] = cvr::slot_rate_to_megabits(cc.rate[idx]);
  }
  for (int tile = 0; tile < kTilesPerFrame; ++tile) {
    cc.weight[static_cast<std::size_t>(tile)] = tile_weight(cell, tile);
  }
  return cell_cache_.emplace(id, cc).first->second;
}

std::uint64_t ContentDb::entry_count() const {
  return static_cast<std::uint64_t>(config_.grid_width) *
         static_cast<std::uint64_t>(config_.grid_height) * kTilesPerFrame *
         kNumQualityLevels;
}

double ContentDb::estimated_store_gb() const {
  // Each (cell, level) entry stores one closed GOP (~10 frames, 1/6 s at
  // 60 FPS) that the runtime loops, so the per-entry bytes are the
  // stream rate times the GOP duration. This reproduces the magnitude of
  // the paper's 171 GB Office-scene store.
  constexpr double kGopSeconds = 1.0 / 6.0;
  double per_cell_megabits = 0.0;
  const CrfRateFunction nominal(config_.rate_model.base_mbps,
                                config_.rate_model.growth, 1.0);
  for (QualityLevel q = 1; q <= kNumQualityLevels; ++q) {
    per_cell_megabits += nominal.rate(q) * kGopSeconds;
  }
  const double cells = static_cast<double>(config_.grid_width) *
                       static_cast<double>(config_.grid_height);
  return cells * per_cell_megabits / 8.0 / 1024.0;  // Mb -> GB
}

}  // namespace cvr::content
