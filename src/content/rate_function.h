// The per-content rate function f_c^R(q).
//
// Section II / Fig. 1a: the size of a tile encoded at quality level q is
// convex and increasing in q (each CRF step of -4 multiplies the bitrate
// by a roughly constant factor, i.e. geometric growth). Rates are in
// Mbps, slot-normalised per src/util/units.h, so f_c^R(q) is directly
// comparable against B_n(t) and B(t).
//
// Calibration: Section IV provisions the server at 36 Mbps per user,
// "the average rate requirement of the tiles by a medium quality level",
// so the geometric model is anchored at ~36 Mbps between levels 3 and 4.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/content/quality.h"

namespace cvr::content {

/// Abstract rate function: maps a quality level to the Mbps needed to
/// deliver the user's tile set for one slot at that level.
class RateFunction {
 public:
  virtual ~RateFunction() = default;

  /// Requires is_valid_level(q).
  virtual double rate(QualityLevel q) const = 0;

  /// Marginal rate of moving q -> q+1. Requires q+1 valid.
  double increment(QualityLevel q) const { return rate(q + 1) - rate(q); }

  /// Checks strict monotonicity and discrete convexity
  /// (rate(q+1)-rate(q) non-decreasing), the assumptions of Section II.
  bool is_convex_increasing() const;
};

/// Geometric (CRF-style) rate function:
///   rate(q) = scale * base_mbps * growth^(q-1).
class CrfRateFunction final : public RateFunction {
 public:
  /// Defaults reproduce the paper's calibration (~36 Mbps mid-level).
  explicit CrfRateFunction(double base_mbps = 14.2, double growth = 1.45,
                           double scale = 1.0);

  double rate(QualityLevel q) const override;

  double base_mbps() const { return base_; }
  double growth() const { return growth_; }
  double scale() const { return scale_; }

 private:
  double base_;
  double growth_;
  double scale_;
};

/// Explicit table of per-level rates (e.g. measured tile sizes).
class TableRateFunction final : public RateFunction {
 public:
  /// `rates_mbps` must have kNumQualityLevels entries, strictly
  /// increasing and discretely convex; throws std::invalid_argument
  /// otherwise.
  explicit TableRateFunction(std::vector<double> rates_mbps);

  double rate(QualityLevel q) const override;

 private:
  std::vector<double> rates_;
};

/// Produces per-content rate functions with realistic scene-to-scene
/// variation (Fig. 1a shows two contents with different magnitudes but
/// the same convex shape). Deterministic in (seed, content id).
class ContentRateModel {
 public:
  struct Config {
    double base_mbps = 14.2;
    double growth = 1.45;
    double scale_sigma = 0.20;   ///< Log-normal spread of per-content scale.
    double growth_jitter = 0.05; ///< Uniform +- jitter on the growth factor.
  };

  ContentRateModel() : ContentRateModel(Config{}, 1) {}
  explicit ContentRateModel(Config config, std::uint64_t seed);

  /// Rate function for content (scene region) `content_id`.
  CrfRateFunction for_content(std::uint64_t content_id) const;

 private:
  Config config_;
  std::uint64_t seed_;
};

}  // namespace cvr::content
