#include "src/content/tile.h"

#include <cmath>
#include <stdexcept>

namespace cvr::content {

namespace {
constexpr std::int64_t kBias = std::int64_t{1} << 23;
}

GridCell cell_for_position(double x_m, double y_m) {
  return GridCell{
      static_cast<std::int32_t>(std::llround(x_m / kGridCellMeters)),
      static_cast<std::int32_t>(std::llround(y_m / kGridCellMeters))};
}

VideoId pack_video_id(const TileKey& key) {
  if (!is_valid_level(key.level)) {
    throw std::out_of_range("pack_video_id: invalid quality level");
  }
  if (key.tile_index < 0 || key.tile_index >= kTilesPerFrame) {
    throw std::out_of_range("pack_video_id: invalid tile index");
  }
  const std::int64_t bx = static_cast<std::int64_t>(key.cell.gx) + kBias;
  const std::int64_t by = static_cast<std::int64_t>(key.cell.gy) + kBias;
  if (bx < 0 || bx >= (kBias << 1) || by < 0 || by >= (kBias << 1)) {
    throw std::out_of_range("pack_video_id: grid coordinate out of range");
  }
  return static_cast<VideoId>(key.level) |
         (static_cast<VideoId>(key.tile_index) << 3) |
         (static_cast<VideoId>(by) << 5) | (static_cast<VideoId>(bx) << 29);
}

TileKey unpack_video_id(VideoId id) {
  TileKey key;
  key.level = static_cast<QualityLevel>(id & 0x7);
  key.tile_index = static_cast<int>((id >> 3) & 0x3);
  key.cell.gy = static_cast<std::int32_t>(((id >> 5) & 0xFFFFFF) - kBias);
  key.cell.gx = static_cast<std::int32_t>(((id >> 29) & 0xFFFFFF) - kBias);
  return key;
}

std::string to_string(const TileKey& key) {
  return "(" + std::to_string(key.cell.gx) + "," + std::to_string(key.cell.gy) +
         ")#" + std::to_string(key.tile_index) + "@q" +
         std::to_string(key.level);
}

}  // namespace cvr::content
