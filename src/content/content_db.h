// Offline-rendered content database.
//
// Section V/VI: every possible tile of the scene is rendered and encoded
// offline; the runtime only looks up sizes by video ID. The paper's
// Office-scene store is ~171 GB — we model the database analytically
// (size synthesised from the per-content rate model) instead of storing
// bytes, which preserves exactly what the scheduler observes: tile sizes.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "src/content/rate_function.h"
#include "src/content/tile.h"

namespace cvr::content {

/// Memoised per-cell content facts (docs/performance.md). Every field is
/// a pure function of (config, cell), so caching is observable only as
/// speed: `rate[q-1]` is bit-identical to
/// `frame_rate_function(cell).rate(q)`, `frame_megabits` its
/// slot-normalised conversion, and `weight[tile]` to
/// `tile_weight(cell, tile)`.
struct CellContent {
  std::array<double, kNumQualityLevels> rate;
  std::array<double, kNumQualityLevels> frame_megabits;
  std::array<double, kTilesPerFrame> weight;
};

struct ContentDbConfig {
  // Scene extent, in grid cells (Section VI: 5 cm granularity).
  std::int32_t grid_width = 200;   ///< 10 m
  std::int32_t grid_height = 160;  ///< 8 m
  ContentRateModel::Config rate_model;
  std::uint64_t seed = 42;
};

class ContentDb {
 public:
  explicit ContentDb(ContentDbConfig config = {});

  /// True iff the cell lies inside the rendered scene.
  bool contains(const GridCell& cell) const;

  /// Content id of a grid cell (used to derive the cell's rate function).
  std::uint64_t content_id(const GridCell& cell) const;

  /// Rate function of the frame at `cell` — the aggregate over its four
  /// tiles, i.e. the f_{c(t)}^R(q) the allocators consume.
  CrfRateFunction frame_rate_function(const GridCell& cell) const;

  /// Texture-complexity weight of one tile within its frame (the sky
  /// tile of an office scene encodes far smaller than the desk tile).
  /// Deterministic in (cell, tile); the four weights of a cell sum to 1.
  double tile_weight(const GridCell& cell, int tile_index) const;

  /// Size of one tile in megabits at a given level: the frame rate
  /// function's slot-normalised share, split by tile_weight(). Tile
  /// index must be valid; throws std::out_of_range outside the scene.
  double tile_size_megabits(const TileKey& key) const;

  /// Memoised per-cell rates and tile weights. First touch of a cell
  /// derives everything through the exact expressions of
  /// frame_rate_function()/tile_weight(); later touches are one hash
  /// lookup. NOT safe for concurrent calls on one instance (the fleet
  /// gives each server its own ContentDb, so per-server parallel tasks
  /// never share one). Throws std::out_of_range outside the scene.
  const CellContent& cell_content(const GridCell& cell) const;

  /// Number of distinct encoded tiles (cells x tiles x levels).
  std::uint64_t entry_count() const;

  /// Estimated store footprint in gigabytes — compare against the
  /// paper's "about 171 GB".
  double estimated_store_gb() const;

  const ContentDbConfig& config() const { return config_; }

 private:
  ContentDbConfig config_;
  ContentRateModel model_;
  /// Lazy per-cell memo keyed by content_id. mutable: pure-function
  /// cache behind const accessors.
  mutable std::unordered_map<std::uint64_t, CellContent> cell_cache_;
};

}  // namespace cvr::content
