#include "src/content/client_buffer.h"

#include <stdexcept>

namespace cvr::content {

ClientTileBuffer::ClientTileBuffer(std::size_t threshold)
    : threshold_(threshold) {
  if (threshold == 0) {
    throw std::invalid_argument("ClientTileBuffer: zero threshold");
  }
}

std::vector<VideoId> ClientTileBuffer::insert(VideoId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return {};
  }
  lru_.push_front(id);
  map_[id] = lru_.begin();
  std::vector<VideoId> released;
  while (map_.size() > threshold_) {
    released.push_back(lru_.back());
    map_.erase(lru_.back());
    lru_.pop_back();
    ++released_total_;
  }
  return released;
}

bool ClientTileBuffer::touch(VideoId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

}  // namespace cvr::content
