// Equirectangular projection and FoV -> tile selection.
//
// Section V projects the panorama to a 2560x1440 equirectangular texture
// and splits it into four tiles (Fig. 5: a 2 x 2 split). A view direction
// (yaw, pitch) maps to texture coordinates linearly (that *is* the
// equirectangular projection); the delivered tile set is every tile whose
// rectangle overlaps the predicted FoV extended by the margin
// (Section V: "transmit all tiles that overlap with this margin").
//
// Tile layout (texture space, u right / v down):
//   tile 0: left-top     tile 1: right-top
//   tile 2: left-bottom  tile 3: right-bottom
// u in [0,1) wraps in yaw: u = (yaw + 180) / 360.
// v in [0,1]: v = (90 - pitch) / 180.
#pragma once

#include <array>
#include <vector>

#include "src/motion/fov.h"
#include "src/motion/pose.h"

namespace cvr::content {

/// Texture coordinate of a view direction. yaw/pitch in degrees.
struct TexCoord {
  double u = 0.0;  ///< [0, 1), wraps horizontally.
  double v = 0.0;  ///< [0, 1], 0 = top (pitch +90).
};

TexCoord project_equirect(double yaw_deg, double pitch_deg);

/// Inverse projection; returns (yaw, pitch) in degrees.
std::array<double, 2> unproject_equirect(const TexCoord& tc);

/// Tile indices (subset of {0,1,2,3}) that overlap the FoV-plus-margin
/// window centred on `view`. Handles yaw wrap-around; a window wider than
/// 180 degrees selects both columns.
std::vector<int> tiles_for_view(const cvr::motion::FovSpec& spec,
                                const cvr::motion::Pose& view);

/// Allocation-free variant for the per-slot hot path: writes the same
/// ascending tile indices into `out` and returns how many were written
/// (1..4). `out` must hold at least four ints.
int tiles_for_view(const cvr::motion::FovSpec& spec,
                   const cvr::motion::Pose& view, int* out);

/// True iff every tile needed for `actual`'s *unmargined* FoV is included
/// in the delivered set (the tile-level coverage check used by the system
/// emulation in addition to the analytic motion::covers()).
bool tiles_cover(const std::vector<int>& delivered,
                 const cvr::motion::FovSpec& spec,
                 const cvr::motion::Pose& actual);

}  // namespace cvr::content
