// Cubemap projection and FoV -> face selection.
//
// Section V: "Note that we can also apply other projection methods to
// our system." This module implements the most common alternative to
// equirectangular: the panorama mapped onto the six faces of a cube,
// one tile per face. Compared to the 2x2 equirectangular split, faces
// are smaller (1/6 vs 1/4 of the panorama), so a narrow FoV usually
// needs fewer delivered bytes — the `ablation_projection` bench
// quantifies the trade-off.
//
// Face frame conventions (right-handed, yaw 0 = +X, yaw 90 = +Y,
// pitch 90 = +Z):
//   kFront +X | kRight +Y | kBack -X | kLeft -Y | kUp +Z | kDown -Z
#pragma once

#include <array>
#include <vector>

#include "src/motion/fov.h"
#include "src/motion/pose.h"

namespace cvr::content {

enum class CubeFace : int {
  kFront = 0,
  kRight = 1,
  kBack = 2,
  kLeft = 3,
  kUp = 4,
  kDown = 5,
};

inline constexpr int kCubeFaces = 6;

/// Face hit by a view direction plus the in-face coordinates in
/// [-1, 1]^2 (gnomonic projection onto the face plane).
struct CubeCoord {
  CubeFace face = CubeFace::kFront;
  double u = 0.0;
  double v = 0.0;
};

/// Projects a (yaw, pitch) direction in degrees onto the cube.
CubeCoord project_cubemap(double yaw_deg, double pitch_deg);

/// Inverse: centre direction of a cube coordinate, (yaw, pitch) degrees.
std::array<double, 2> unproject_cubemap(const CubeCoord& coord);

/// Faces overlapped by the FoV-plus-margin window centred on `view`.
/// Computed by dense direction sampling across the window (conservative
/// to within the sampling pitch; exact for the face *set* at the
/// resolutions used here). Sorted, deduplicated face indices 0..5.
std::vector<int> faces_for_view(const cvr::motion::FovSpec& spec,
                                const cvr::motion::Pose& view);

/// True iff the delivered face set covers the actual (unmargined) FoV.
bool faces_cover(const std::vector<int>& delivered,
                 const cvr::motion::FovSpec& spec,
                 const cvr::motion::Pose& actual);

}  // namespace cvr::content
