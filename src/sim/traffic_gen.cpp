#include "src/sim/traffic_gen.h"

#include <cmath>
#include <stdexcept>

namespace cvr::sim {

namespace {

// Per-shape defaults when config.shape_param == 0.
double default_param(TrafficShape shape) {
  switch (shape) {
    case TrafficShape::kNormal:
      return 0.25;  // relative stddev
    case TrafficShape::kPeaks:
      return 0.25;  // peak fraction of the period
    case TrafficShape::kGamma:
      return 2.0;  // shape k
    case TrafficShape::kUniform:
    case TrafficShape::kExponential:
      return 0.0;  // parameter-free
  }
  return 0.0;
}

}  // namespace

TrafficShape parse_shape(const std::string& text) {
  if (text == "uniform") return TrafficShape::kUniform;
  if (text == "normal") return TrafficShape::kNormal;
  if (text == "peaks") return TrafficShape::kPeaks;
  if (text == "gamma") return TrafficShape::kGamma;
  if (text == "exponential") return TrafficShape::kExponential;
  throw std::invalid_argument(
      "traffic: unknown shape '" + text +
      "' (expected uniform, normal, peaks, gamma, or exponential)");
}

const char* shape_name(TrafficShape shape) {
  switch (shape) {
    case TrafficShape::kUniform:
      return "uniform";
    case TrafficShape::kNormal:
      return "normal";
    case TrafficShape::kPeaks:
      return "peaks";
    case TrafficShape::kGamma:
      return "gamma";
    case TrafficShape::kExponential:
      return "exponential";
  }
  return "unknown";
}

TrafficGenerator::TrafficGenerator(TrafficConfig config,
                                   std::size_t capacity_users)
    : config_(config), capacity_users_(capacity_users), rng_(config.seed) {
  if (capacity_users_ == 0) {
    throw std::invalid_argument("TrafficGenerator: zero capacity_users");
  }
  if (!std::isfinite(config_.load) || config_.load <= 0.0) {
    throw std::invalid_argument("TrafficGenerator: load must be positive");
  }
  if (!std::isfinite(config_.connect_speed) || config_.connect_speed <= 0.0) {
    throw std::invalid_argument(
        "TrafficGenerator: connect_speed must be positive");
  }
  if (!std::isfinite(config_.mean_session_slots) ||
      config_.mean_session_slots < 1.0) {
    throw std::invalid_argument(
        "TrafficGenerator: mean_session_slots must be >= 1");
  }
  if (!std::isfinite(config_.qos_ms) || config_.qos_ms <= 0.0) {
    throw std::invalid_argument("TrafficGenerator: qos_ms must be positive");
  }
  if (!std::isfinite(config_.qos_jitter) || config_.qos_jitter < 0.0 ||
      config_.qos_jitter >= 1.0) {
    throw std::invalid_argument(
        "TrafficGenerator: qos_jitter must be in [0, 1)");
  }
  if (config_.shape_param < 0.0 || !std::isfinite(config_.shape_param)) {
    throw std::invalid_argument(
        "TrafficGenerator: shape_param must be finite and >= 0");
  }
  if (config_.peaks_period_slots == 0) {
    throw std::invalid_argument(
        "TrafficGenerator: peaks_period_slots must be >= 1");
  }
  param_ = config_.shape_param > 0.0 ? config_.shape_param
                                     : default_param(config_.shape);
  mean_gap_slots_ = config_.mean_session_slots /
                    (config_.load * static_cast<double>(capacity_users_));
  reset();
}

void TrafficGenerator::reset() {
  rng_ = cvr::Rng(config_.seed);
  next_id_ = 0;
  cursor_ = 0;
  next_arrival_ = 0.0;  // the peaks clock must rewind before sampling
  next_arrival_ = sample_gap();
}

void TrafficGenerator::arrivals_for_slot(std::size_t slot,
                                         std::vector<SessionRequest>& out) {
  if (slot < cursor_) {
    throw std::logic_error(
        "TrafficGenerator: slots must be consumed in increasing order "
        "(use reset() to replay)");
  }
  cursor_ = slot + 1;
  while (next_arrival_ < static_cast<double>(slot + 1)) {
    SessionRequest request;
    request.id = next_id_++;
    request.arrival_slot = slot;
    const double duration = rng_.exponential(1.0 / config_.mean_session_slots);
    request.duration_slots =
        static_cast<std::size_t>(std::max(1.0, std::floor(duration + 0.5)));
    request.qos_ms =
        config_.qos_jitter > 0.0
            ? config_.qos_ms * rng_.uniform(1.0 - config_.qos_jitter,
                                            1.0 + config_.qos_jitter)
            : config_.qos_ms;
    out.push_back(request);
    next_arrival_ += sample_gap();
  }
}

double TrafficGenerator::gamma(double shape_k) {
  // Marsaglia & Tsang (2000): squeeze-accept for k >= 1; boost k < 1 by
  // sampling k + 1 and scaling by U^(1/k). Deterministic given rng_.
  if (shape_k < 1.0) {
    const double u = rng_.uniform();
    return gamma(shape_k + 1.0) * std::pow(u, 1.0 / shape_k);
  }
  const double d = shape_k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    const double x = rng_.normal();
    const double base = 1.0 + c * x;
    if (base <= 0.0) continue;
    const double v = base * base * base;
    const double u = rng_.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double TrafficGenerator::sample_gap() {
  const double g = mean_gap_slots_;
  switch (config_.shape) {
    case TrafficShape::kUniform:
      return rng_.uniform(0.0, 2.0 * g);
    case TrafficShape::kNormal: {
      const double gap = rng_.normal(g, param_ * g);
      return std::max(0.05 * g, gap);
    }
    case TrafficShape::kPeaks: {
      // Square-wave Poisson: the peak fraction `param_` of each period
      // carries half of all traffic, the remainder the other half, so
      // the time-averaged rate stays exactly 1/g. A piecewise-constant
      // intensity is sampled exactly by drawing Exp at the current
      // window's rate and — when the jump crosses a window boundary —
      // restarting the draw from the boundary at the new rate (the
      // memoryless property makes the restart exact, not approximate).
      const double period = static_cast<double>(config_.peaks_period_slots);
      double t = next_arrival_;
      for (;;) {
        const double pos = std::fmod(t, period);
        const bool in_peak = pos < param_ * period;
        const double multiplier =
            in_peak ? 0.5 / param_ : 0.5 / (1.0 - param_);
        const double gap = rng_.exponential(multiplier / g);
        const double boundary =
            (t - pos) + (in_peak ? param_ * period : period);
        if (t + gap < boundary) return (t + gap) - next_arrival_;
        t = boundary;
      }
    }
    case TrafficShape::kGamma: {
      // Gamma(k, theta = g/k): mean g, squared CV 1/k.
      return gamma(param_) * (g / param_);
    }
    case TrafficShape::kExponential:
      return rng_.exponential(1.0 / g);
  }
  return g;
}

}  // namespace cvr::sim
