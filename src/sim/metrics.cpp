#include "src/sim/metrics.h"

#include <stdexcept>

namespace cvr::sim {

namespace {
template <typename Getter>
cvr::Cdf build_cdf(const std::vector<UserOutcome>& outcomes, Getter get) {
  std::vector<double> samples;
  samples.reserve(outcomes.size());
  for (const auto& o : outcomes) samples.push_back(get(o));
  return cvr::Cdf(std::move(samples));
}

template <typename Getter>
double mean_of(const std::vector<UserOutcome>& outcomes, Getter get) {
  if (outcomes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& o : outcomes) total += get(o);
  return total / static_cast<double>(outcomes.size());
}
}  // namespace

cvr::Cdf ArmResult::qoe_cdf() const {
  return build_cdf(outcomes, [](const UserOutcome& o) { return o.avg_qoe; });
}
cvr::Cdf ArmResult::quality_cdf() const {
  return build_cdf(outcomes, [](const UserOutcome& o) { return o.avg_quality; });
}
cvr::Cdf ArmResult::delay_ms_cdf() const {
  return build_cdf(outcomes, [](const UserOutcome& o) { return o.avg_delay_ms; });
}
cvr::Cdf ArmResult::variance_cdf() const {
  return build_cdf(outcomes, [](const UserOutcome& o) { return o.variance; });
}

double ArmResult::mean_qoe() const {
  return mean_of(outcomes, [](const UserOutcome& o) { return o.avg_qoe; });
}
double ArmResult::mean_quality() const {
  return mean_of(outcomes, [](const UserOutcome& o) { return o.avg_quality; });
}
double ArmResult::mean_delay_ms() const {
  return mean_of(outcomes, [](const UserOutcome& o) { return o.avg_delay_ms; });
}
double ArmResult::mean_variance() const {
  return mean_of(outcomes, [](const UserOutcome& o) { return o.variance; });
}
double ArmResult::mean_fps() const {
  return mean_of(outcomes, [](const UserOutcome& o) { return o.fps; });
}

double ArmResult::mean_fault_slots() const {
  return mean_of(outcomes, [](const UserOutcome& o) { return o.fault_slots; });
}
double ArmResult::mean_time_to_recover() const {
  return mean_of(outcomes,
                 [](const UserOutcome& o) { return o.time_to_recover_slots; });
}
double ArmResult::mean_qoe_dip() const {
  return mean_of(outcomes, [](const UserOutcome& o) { return o.qoe_dip; });
}
double ArmResult::mean_frames_dropped_in_fault() const {
  return mean_of(outcomes,
                 [](const UserOutcome& o) { return o.frames_dropped_in_fault; });
}

double ArmResult::total_wall_ms() const {
  double total = 0.0;
  for (double ms : run_wall_ms) total += ms;
  return total;
}

double ArmResult::mean_wall_ms() const {
  if (run_wall_ms.empty()) return 0.0;
  return total_wall_ms() / static_cast<double>(run_wall_ms.size());
}

double jains_index(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double total = 0.0;
  double total_sq = 0.0;
  for (double x : values) {
    if (x < 0.0) {
      throw std::invalid_argument("jains_index: negative value");
    }
    total += x;
    total_sq += x * x;
  }
  if (total_sq == 0.0) return 1.0;
  return total * total / (static_cast<double>(values.size()) * total_sq);
}

double quality_fairness(const ArmResult& arm) {
  std::vector<double> qualities;
  qualities.reserve(arm.outcomes.size());
  for (const auto& o : arm.outcomes) qualities.push_back(o.avg_quality);
  return jains_index(qualities);
}

UserOutcome make_outcome(const cvr::core::UserQoeAccumulator& acc,
                         const cvr::core::QoeParams& params, double hit_rate,
                         double fps) {
  UserOutcome o;
  o.avg_qoe = acc.average_qoe(params);
  o.avg_quality = acc.mean_viewed_quality();
  o.avg_level = acc.mean_level();
  o.avg_delay_ms = acc.mean_delay();
  o.variance = acc.variance();
  o.prediction_accuracy = hit_rate;
  o.fps = fps;
  return o;
}

}  // namespace cvr::sim
