#include "src/sim/simulation.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/core/slot_arena.h"
#include "src/net/mm1.h"
#include "src/util/thread_pool.h"

namespace cvr::sim {

namespace {

/// Clamps a metric position into the content DB's rendered scene.
content::GridCell clamped_cell(const content::ContentDb& db, double x,
                               double y) {
  content::GridCell cell = content::cell_for_position(x, y);
  cell.gx = std::clamp(cell.gx, 0, db.config().grid_width - 1);
  cell.gy = std::clamp(cell.gy, 0, db.config().grid_height - 1);
  return cell;
}

}  // namespace

TraceSimulation::TraceSimulation(TraceSimConfig config,
                                 const trace::TraceRepository& repository)
    : config_(config),
      repository_(&repository),
      motion_generator_(config.motion) {
  if (config_.users == 0 || config_.slots == 0 || config_.scenes == 0) {
    throw std::invalid_argument("TraceSimConfig: zero users/slots/scenes");
  }
  scenes_.reserve(config_.scenes);
  for (std::size_t s = 0; s < config_.scenes; ++s) {
    content::ContentDbConfig scene_config = config_.content;
    scene_config.seed = config_.content.seed + 1000003 * s;
    scenes_.emplace_back(scene_config);
  }
}

std::vector<UserOutcome> TraceSimulation::run(
    core::Allocator& allocator, std::size_t run,
    std::vector<TraceSlotRecord>* log,
    telemetry::Collector* telemetry) const {
  const std::size_t n_users = config_.users;
  allocator.reset();
  // Optional within-slot pool, detached before destruction so the
  // allocator never holds a dangling pointer past this run.
  std::unique_ptr<cvr::ThreadPool> slot_pool;
  if (config_.allocator_threads > 0) {
    slot_pool = std::make_unique<cvr::ThreadPool>(
        cvr::resolve_thread_count(config_.allocator_threads));
  }
  allocator.set_thread_pool(slot_pool.get());
  struct PoolDetach {
    core::Allocator& allocator;
    ~PoolDetach() { allocator.set_thread_pool(nullptr); }
  } pool_detach{allocator};
  if (telemetry != nullptr && !telemetry->counting()) telemetry = nullptr;
  if (telemetry != nullptr && telemetry->tracing()) {
    telemetry->label_process(telemetry::Collector::kServerPid, "server");
    for (std::size_t u = 0; u < n_users; ++u) {
      telemetry->label_process(telemetry::Collector::user_pid(u),
                               "user " + std::to_string(u));
    }
  }

  struct UserState {
    motion::MotionTrace trace;
    trace::SlotMapper bandwidth;
    std::unique_ptr<motion::MotionPredictor> predictor;
    std::unique_ptr<content::HevcFrameProcess> hevc;
    motion::AccuracyEstimator accuracy;
    motion::MarginController margin;
    core::UserQoeAccumulator qoe;
    std::size_t hits = 0;
  };

  auto make_predictor = [&]() -> std::unique_ptr<motion::MotionPredictor> {
    if (config_.predictor_kind == motion::PredictorKind::kLinearRegression) {
      return std::make_unique<motion::LinearMotionPredictor>(
          config_.predictor);
    }
    return motion::make_predictor(config_.predictor_kind);
  };

  std::vector<UserState> users;
  users.reserve(n_users);
  const auto traces = repository_->assign_all(run, n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    users.push_back(UserState{
        motion_generator_.generate(config_.seed + 1000 * (run + 1), u,
                                   config_.slots),
        trace::SlotMapper(*traces[u], config_.motion.slot_seconds),
        make_predictor(),
        // One codec process per user, seeded per (seed, run, user):
        // deterministic, and absent entirely when the feature is off.
        config_.hevc.enabled
            ? std::make_unique<content::HevcFrameProcess>(
                  config_.hevc, config_.seed + 777 * (run + 1) + u)
            : nullptr,
        motion::AccuracyEstimator(),
        motion::MarginController(config_.fov.margin_deg,
                                 config_.margin_controller),
        core::UserQoeAccumulator(), 0});
  }

  const double server_bandwidth =
      config_.server_mbps_per_user * static_cast<double>(n_users);

  // Per-slot working storage, recycled across the horizon: problem,
  // allocation, and the hit flags keep their capacity so the steady-
  // state build->allocate path is heap-allocation-free (see
  // src/core/slot_arena.h and docs/performance.md).
  core::SlotArena arena;
  core::Allocation allocation;
  std::vector<bool> hit;

  for (std::size_t t = 0; t < config_.slots; ++t) {
    const std::int64_t slot = static_cast<std::int64_t>(t);
    telemetry::PhaseSpan slot_span(telemetry, telemetry::Phase::kSlot,
                                   telemetry::Collector::kServerPid, slot);
    core::SlotProblem& problem = arena.acquire(n_users);
    problem.params = config_.params;
    problem.server_bandwidth = server_bandwidth;

    hit.assign(n_users, false);
    {
      telemetry::PhaseSpan build_span(telemetry,
                                      telemetry::Phase::kProblemBuild,
                                      telemetry::Collector::kServerPid, slot);
      for (std::size_t u = 0; u < n_users; ++u) {
        UserState& user = users[u];
        const motion::Pose& actual = user.trace[t];
        // The server only has poses up to t-1; before the predictor is
        // primed, delivering for the last observed pose is the system's
        // cold-start behaviour (first slot: the pose uploaded on session
        // join, which we model as a hit).
        motion::Pose predicted;
        {
          telemetry::PhaseSpan predict_span(
              telemetry, telemetry::Phase::kPredict,
              telemetry::Collector::user_pid(u), slot);
          predicted = user.predictor->observations() > 0
                          ? user.predictor->predict(1)
                          : actual;
        }
        motion::FovSpec user_fov = config_.fov;
        if (config_.adaptive_margin) {
          user_fov.margin_deg = user.margin.margin_deg();
        }
        hit[u] = motion::covers(user_fov, predicted, actual);

        // The delivered portion's size follows the margin: scale the rate
        // function by the panorama fraction relative to the reference
        // margin (a no-op when margins match the reference).
        motion::FovSpec reference_fov = config_.fov;
        reference_fov.margin_deg = config_.reference_margin_deg;
        const double margin_scale =
            motion::delivered_panorama_fraction(user_fov) /
            motion::delivered_panorama_fraction(reference_fov);

        const double b_n = user.bandwidth.bandwidth_for_slot(t);
        const content::ContentDb& scene = scenes_[u % scenes_.size()];
        const content::GridCell cell =
            clamped_cell(scene, predicted.x, predicted.y);
        // HEVC realism (docs/workloads.md): this slot's frame is priced
        // at its realized I/P-frame size, not the smooth CRF mean.
        const double hevc_mult = user.hevc ? user.hevc->step() : 1.0;
        const content::CrfRateFunction base_f = scene.frame_rate_function(cell);
        const content::CrfRateFunction f(
            base_f.base_mbps(), base_f.growth(),
            base_f.scale() * margin_scale * hevc_mult);
        problem.users[u] = core::UserSlotContext::from_rate_function(
            f, b_n, user.accuracy.estimate(), user.qoe.mean_viewed_quality(),
            static_cast<double>(t + 1));
      }
    }

    {
      telemetry::PhaseSpan solve_span(telemetry, telemetry::Phase::kAllocSolve,
                                      telemetry::Collector::kServerPid, slot);
      allocator.allocate_into(problem, allocation);
    }
    if (allocation.levels.size() != n_users) {
      throw std::logic_error("allocator returned wrong level count");
    }
    if (telemetry != nullptr) {
      telemetry->count_allocation(allocation.levels);
    }

    {
      telemetry::PhaseSpan realize_span(telemetry, telemetry::Phase::kRealize,
                                        telemetry::Collector::kServerPid, slot);
      for (std::size_t u = 0; u < n_users; ++u) {
        UserState& user = users[u];
        const core::QualityLevel q = allocation.levels[u];
        const double delay =
            problem.users[u].delay[static_cast<std::size_t>(q - 1)];
        if (log != nullptr) {
          TraceSlotRecord record;
          record.slot = t;
          record.user = u;
          record.level = q;
          record.bandwidth_mbps = problem.users[u].user_bandwidth;
          record.rate_mbps =
              problem.users[u].rate[static_cast<std::size_t>(q - 1)];
          record.delay_ms = delay;
          record.hit = hit[u];
          record.delta_estimate = problem.users[u].delta;
          record.qbar = problem.users[u].qbar;
          log->push_back(record);
        }
        user.qoe.record(q, hit[u], delay);
        user.accuracy.record(hit[u]);
        if (config_.adaptive_margin) {
          user.margin.update(user.accuracy.estimate());
        }
        if (hit[u]) {
          ++user.hits;
          if (telemetry != nullptr) {
            telemetry->count(telemetry::Counter::kCoverageHits);
          }
        }
        user.predictor->observe(t, user.trace[t]);
      }
    }
    if (telemetry != nullptr) telemetry->count(telemetry::Counter::kSlots);
  }

  std::vector<UserOutcome> outcomes;
  outcomes.reserve(n_users);
  for (const auto& user : users) {
    const double hit_rate =
        static_cast<double>(user.hits) / static_cast<double>(config_.slots);
    outcomes.push_back(make_outcome(user.qoe, config_.params, hit_rate, 0.0));
  }
  return outcomes;
}

std::vector<ArmResult> TraceSimulation::compare(
    const std::vector<core::Allocator*>& allocators, std::size_t runs) const {
  std::vector<ArmResult> results;
  results.reserve(allocators.size());
  for (core::Allocator* allocator : allocators) {
    if (allocator == nullptr) {
      throw std::invalid_argument("compare: null allocator");
    }
    ArmResult arm;
    arm.algorithm = std::string(allocator->name());
    for (std::size_t r = 0; r < runs; ++r) {
      auto outcomes = run(*allocator, r);
      arm.outcomes.insert(arm.outcomes.end(), outcomes.begin(), outcomes.end());
    }
    results.push_back(std::move(arm));
  }
  return results;
}

}  // namespace cvr::sim
