// Open-loop shaped traffic generation for the load service.
//
// The batch platforms simulate a *closed* population: N users exist for
// the whole horizon. A service that "serves heavy traffic" faces an
// *open* arrival process instead — sessions connect, stay for a while,
// and leave, and the arrival intensity is shaped (bursty peaks, heavy
// tails), not constant. TrafficGenerator produces that process: a
// deterministic, seeded stream of SessionRequests whose inter-arrival
// gaps follow one of the five classic loader shapes (uniform / normal /
// peaks / gamma / exponential — the `traffic_shape` knob set of
// cloudsuite's memcached loader), at a target offered `load`.
//
// Load semantics (Little's law): with mean session length S slots and
// arrival rate lambda sessions/slot, the steady-state offered
// population is lambda * S. The generator fixes
//
//   lambda = load * capacity_users / mean_session_slots,
//
// so `load` reads directly as *offered concurrency as a fraction of the
// server's user-slot capacity*: load 0.8 offers 80 % occupancy, load
// 1.3 guarantees overload and exercises admission control. Every shape
// preserves this mean rate; only the gap distribution (and hence
// burstiness) changes.
//
// Determinism contract: the stream is a pure function of (config,
// capacity_users) — same inputs replay bit-identically, and reset()
// rewinds to slot 0 (tests/traffic_gen_test.cpp enforces both).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace cvr::sim {

/// Inter-arrival gap distributions, mirroring the cloudsuite loader's
/// `traffic_shape` knob. All shapes share the same mean gap; they
/// differ in variance and autocorrelation (peaks is the only
/// time-inhomogeneous one).
enum class TrafficShape {
  kUniform,      ///< Gap ~ U(0, 2g): bounded, low variance.
  kNormal,       ///< Gap ~ N(g, (param*g)^2) truncated at 0.05 g.
  kPeaks,        ///< Square-wave Poisson: half the traffic arrives in the
                 ///< peak fraction `param` of each period (bursts).
  kGamma,        ///< Gap ~ Gamma(k = param, theta = g/param).
  kExponential,  ///< Gap ~ Exp(mean g): the memoryless Poisson process.
};

/// Parses "uniform" / "normal" / "peaks" / "gamma" / "exponential" (the
/// bench `--shape` flag). Throws std::invalid_argument on anything
/// else, naming the value.
TrafficShape parse_shape(const std::string& text);
const char* shape_name(TrafficShape shape);

/// Knobs of the open-loop arrival process. Defaults give a moderate,
/// SLO-clean load; the bench sweeps `load` to find the admission knee.
struct TrafficConfig {
  TrafficShape shape = TrafficShape::kExponential;
  /// Offered steady-state concurrency as a fraction of the server's
  /// user-slot capacity (see the Little's-law note above). Must be
  /// positive and finite.
  double load = 0.5;
  /// Shape parameter; 0 selects the per-shape default (normal: 0.25
  /// relative stddev, peaks: 0.25 peak fraction, gamma: k = 2).
  double shape_param = 0.0;
  /// Ramp-up pacing: the service completes at most `connect_speed` new
  /// connections per second; arrivals beyond it wait in the accept
  /// queue (system::LoadServer reads this — the generator itself stays
  /// open-loop and never defers an arrival).
  double connect_speed = 200.0;
  /// Mean session length (slots); durations are Exp(mean), min 1 —
  /// the connection-churn knob.
  double mean_session_slots = 660.0;
  /// Per-request QoS latency budget (ms): the slot delivery delay each
  /// session expects; a slot served above it is an SLO violation.
  double qos_ms = 20.0;
  /// Relative half-width of the per-session QoS jitter: each session's
  /// budget is qos_ms * U(1 - jitter, 1 + jitter). 0 = identical
  /// budgets.
  double qos_jitter = 0.0;
  /// Period of the peaks square wave (slots).
  std::size_t peaks_period_slots = 400;
  std::uint64_t seed = 1;
};

/// One session wanting service: arrives at `arrival_slot`, intends to
/// stay `duration_slots`, and expects per-slot delivery within
/// `qos_ms`. Ids are dense and increasing in arrival order.
struct SessionRequest {
  std::uint64_t id = 0;
  std::size_t arrival_slot = 0;
  std::size_t duration_slots = 1;
  double qos_ms = 0.0;

  friend bool operator==(const SessionRequest&,
                         const SessionRequest&) = default;
};

class TrafficGenerator {
 public:
  /// Validates the config (throws std::invalid_argument on a
  /// non-positive load / capacity / connect_speed / qos, a mean session
  /// below one slot, or a peaks period of zero) and derives the mean
  /// gap from `capacity_users`.
  TrafficGenerator(TrafficConfig config, std::size_t capacity_users);

  const TrafficConfig& config() const { return config_; }
  std::size_t capacity_users() const { return capacity_users_; }
  /// Mean inter-arrival gap g = mean_session_slots / (load * capacity).
  double mean_gap_slots() const { return mean_gap_slots_; }

  /// Appends the sessions arriving at `slot` to `out` (does not clear
  /// it). Slots must be consumed in strictly increasing order — the
  /// generator is a stream, not random access (throws std::logic_error
  /// on a rewind; use reset() to replay).
  void arrivals_for_slot(std::size_t slot, std::vector<SessionRequest>& out);

  /// Rewinds to slot 0: the replayed stream is bit-identical to the
  /// first pass.
  void reset();

 private:
  double sample_gap();
  double gamma(double shape_k);  // Marsaglia-Tsang, mean shape_k.

  TrafficConfig config_;
  std::size_t capacity_users_;
  double mean_gap_slots_ = 0.0;
  double param_ = 0.0;  // shape_param with the per-shape default applied
  cvr::Rng rng_;
  double next_arrival_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::size_t cursor_ = 0;  // next slot expected by arrivals_for_slot
};

}  // namespace cvr::sim
