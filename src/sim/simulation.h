// The Section-IV trace-based simulation platform.
//
// Per run: N users each replay a synthetic 6-DoF motion trace and a
// network trace (half FCC-style, half LTE-style). Each slot t:
//   1. the server predicts each user's pose one slot ahead by per-axis
//      linear regression and picks the content cell for it;
//   2. the slot problem (5)-(7) is built — rates from the content DB's
//      convex rate function, delays from the analytic M/M/1 model
//      (Section IV assumes perfect knowledge of delay and throughput),
//      delta from the online accuracy estimate, qbar from realized
//      history;
//   3. the allocator under test picks quality levels;
//   4. the outcome is realized: 1_n(t) = FoV-coverage of the prediction,
//      QoE bookkeeping via the exact Welford recurrence.
// B(t) = 36 Mbps x N ("respects the average rate requirement of the
// tiles by a medium quality level").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/content/content_db.h"
#include "src/content/hevc_process.h"
#include "src/core/allocator.h"
#include "src/motion/accuracy.h"
#include "src/motion/fov.h"
#include "src/motion/margin_controller.h"
#include "src/motion/motion_generator.h"
#include "src/motion/predictor.h"
#include "src/sim/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/trace_repository.h"

namespace cvr::sim {

struct TraceSimConfig {
  std::size_t users = 5;
  std::size_t slots = 1980;  ///< 30 s at 66 FPS; the paper runs 300 s.
  double server_mbps_per_user = 36.0;
  core::QoeParams params{0.02, 0.5};  ///< Section IV values.
  std::uint64_t seed = 7;
  motion::FovSpec fov;
  motion::PredictorConfig predictor;
  /// Which prediction model to run (Section II: any model plugs in).
  motion::PredictorKind predictor_kind =
      motion::PredictorKind::kLinearRegression;
  /// The delivered-portion size scales with the margin: rates are
  /// multiplied by delivered_panorama_fraction(fov) relative to this
  /// reference margin, so widening the margin genuinely costs bandwidth
  /// (Section II's margin/bandwidth trade).
  double reference_margin_deg = 15.0;
  /// Adaptive-margin extension: per-user MarginController drives the
  /// delivered margin from the online delta estimate.
  bool adaptive_margin = false;
  motion::MarginControllerConfig margin_controller;
  motion::MotionGeneratorConfig motion;
  content::ContentDbConfig content;
  /// HEVC frame-size process (docs/workloads.md): when enabled, each
  /// user's per-slot rate function is scaled by their realized
  /// I/P-frame size multiplier instead of the smooth CRF point
  /// estimate. Off by default — bit-identical to the smooth model.
  content::HevcProcessConfig hevc;
  /// The paper's motion dataset spans "two large VR scenes"; users are
  /// assigned scene u % scenes, each scene being an independently seeded
  /// content database (different per-cell rate functions).
  std::size_t scenes = 2;
  /// Within-slot allocator parallelism (distinct from the ensemble
  /// runner's across-cell threads): 0 = serial (default); k > 0 lends
  /// the allocator a ThreadPool of resolve_thread_count(k) workers for
  /// its per-slot fork-join spans (engaged only at large user counts —
  /// see DvGreedyAllocator::kDefaultParallelMinUsers). Bit-identical
  /// results either way; this is purely an execution knob.
  std::size_t allocator_threads = 0;
};

/// Per-(slot, user) record of a trace-simulation run — the platform's
/// flight recorder (see system::Timeline for the system-side analogue).
struct TraceSlotRecord {
  std::size_t slot = 0;
  std::size_t user = 0;
  core::QualityLevel level = 1;
  double bandwidth_mbps = 0.0;  ///< True B_n(t) (perfect knowledge).
  double rate_mbps = 0.0;       ///< f(q) of the chosen level.
  double delay_ms = 0.0;        ///< Realized eq. (13) delay.
  bool hit = false;             ///< 1_n(t).
  double delta_estimate = 0.0;  ///< delta_bar fed to the allocator.
  double qbar = 0.0;            ///< Running viewed-quality mean fed in.
};

class TraceSimulation {
 public:
  TraceSimulation(TraceSimConfig config,
                  const trace::TraceRepository& repository);

  /// Runs one allocator over run index `run` (fresh allocator state);
  /// returns one outcome per user. When `log` is non-null, appends one
  /// TraceSlotRecord per (slot, user). When `telemetry` is non-null (and
  /// not kOff), per-slot phase timings and counters are recorded —
  /// measurement metadata only, never part of the outcome: results are
  /// bit-identical for every telemetry mode (docs/observability.md).
  std::vector<UserOutcome> run(core::Allocator& allocator, std::size_t run,
                               std::vector<TraceSlotRecord>* log = nullptr,
                               telemetry::Collector* telemetry = nullptr)
      const;

  /// Runs several allocators over `runs` independent runs each; all arms
  /// see identical motion and network traces. Outcomes are pooled
  /// run-major for CDFs, exactly the Figs. 2/3 sample set.
  std::vector<ArmResult> compare(
      const std::vector<core::Allocator*>& allocators, std::size_t runs) const;

  const TraceSimConfig& config() const { return config_; }

 private:
  TraceSimConfig config_;
  const trace::TraceRepository* repository_;
  std::vector<content::ContentDb> scenes_;
  motion::MotionGenerator motion_generator_;
};

}  // namespace cvr::sim
