// Metric collection for the trace-based simulation (Section IV) and the
// system emulation (Section VI). The paper's Figs. 2/3 plot CDFs over
// (run x user) samples of four per-horizon quantities; Figs. 7/8 plot
// their means. This module owns those definitions so every experiment
// measures exactly the same thing.
#pragma once

#include <string>
#include <vector>

#include "src/core/qoe.h"
#include "src/util/stats.h"

namespace cvr::sim {

/// Per-user, per-horizon outcome (one CDF sample in Figs. 2/3).
struct UserOutcome {
  double avg_qoe = 0.0;       ///< QoE_n(T)/T.
  double avg_quality = 0.0;   ///< mean of q_n(t) 1_n(t).
  double avg_level = 0.0;     ///< mean *chosen* level q_n(t) (diagnostic).
  double avg_delay_ms = 0.0;  ///< mean delivery delay, eq. (13) in ms.
  double variance = 0.0;      ///< sigma_n^2(T).
  double prediction_accuracy = 0.0;  ///< realized mean of 1_n(t).
  double fps = 0.0;           ///< displayed frames per second (system only).

  // Recovery accounting (fault-injection runs only; all zero for a run
  // with an empty FaultSchedule — see faults::RecoveryTracker for the
  // definitions).
  double fault_slots = 0.0;             ///< Slots inside fault windows.
  double time_to_recover_slots = 0.0;   ///< Mean per fault episode.
  double qoe_dip = 0.0;                 ///< Quality-dip depth.
  double frames_dropped_in_fault = 0.0; ///< Missed frames in fault windows.

  // Fleet accounting (fleet::FleetSim runs only; home_server stays 0
  // and migrations 0 for single-server runs, keeping the legacy
  // resilience CSV schema when K=1 — see docs/fleet.md).
  double home_server = 0.0;  ///< Initial consistent-hash assignment.
  double migrations = 0.0;   ///< Times this user changed servers.
};

/// All outcomes of one experiment arm (one algorithm across runs).
struct ArmResult {
  std::string algorithm;
  std::vector<UserOutcome> outcomes;  ///< run-major, user-minor.
  /// Wall-clock of each run of this arm, in run order, as measured by
  /// the experiment driver (experiments::run_ensemble); empty when the
  /// arm was produced without timing (e.g. plain compare()). Timing is
  /// measurement metadata: determinism guarantees cover `outcomes`
  /// only, never these values.
  std::vector<double> run_wall_ms;

  cvr::Cdf qoe_cdf() const;
  cvr::Cdf quality_cdf() const;
  cvr::Cdf delay_ms_cdf() const;
  cvr::Cdf variance_cdf() const;

  double mean_qoe() const;
  double mean_quality() const;
  double mean_delay_ms() const;
  double mean_variance() const;
  double mean_fps() const;

  /// Resilience means (bench/resilience_chaos): all zero for arms run
  /// without faults.
  double mean_fault_slots() const;
  double mean_time_to_recover() const;
  double mean_qoe_dip() const;
  double mean_frames_dropped_in_fault() const;

  /// Sum / mean of run_wall_ms; 0 when no timings were recorded.
  double total_wall_ms() const;
  double mean_wall_ms() const;
};

/// Builds a UserOutcome from an accumulator and the realized hit count.
UserOutcome make_outcome(const cvr::core::UserQoeAccumulator& acc,
                         const cvr::core::QoeParams& params, double hit_rate,
                         double fps);

/// Jain's fairness index (sum x)^2 / (n sum x^2), in (0, 1]; 1 = all
/// equal. The standard fairness measure for a shared-resource scheduler
/// — relevant here because the collaborative setting wants *every*
/// student served, not a high mean. Values must be non-negative;
/// returns 1.0 for empty or all-zero inputs (vacuously fair).
double jains_index(const std::vector<double>& values);

/// Jain's index over an arm's per-(run x user) average quality — the
/// "did anyone get starved" view of an algorithm.
double quality_fairness(const ArmResult& arm);

}  // namespace cvr::sim
