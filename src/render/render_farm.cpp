#include "src/render/render_farm.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace cvr::render {

RenderFarm::RenderFarm(RenderFarmConfig config) : config_(config) {
  if (config_.gpus <= 0 || config_.render_ms_per_tile <= 0.0 ||
      config_.encode_ms_base < 0.0 || config_.encode_ms_per_level < 0.0 ||
      config_.slot_budget_ms <= 0.0) {
    throw std::invalid_argument("RenderFarmConfig: invalid parameters");
  }
}

double RenderFarm::encode_ms(content::QualityLevel level) const {
  if (!content::is_valid_level(level)) {
    throw std::out_of_range("RenderFarm::encode_ms: invalid level");
  }
  return config_.encode_ms_base +
         config_.encode_ms_per_level * static_cast<double>(level);
}

double RenderFarm::stream_ms(std::size_t tiles,
                             content::QualityLevel level) const {
  if (tiles == 0) return 0.0;
  const double render = config_.render_ms_per_tile;
  const double encode = encode_ms(level);
  if (!config_.pipelined) {
    return static_cast<double>(tiles) * (render + encode);
  }
  // Two-stage pipeline: total = fill (first render) + (tiles) x
  // bottleneck stage + drain (last encode if encode isn't the
  // bottleneck... classic formula: r + max(r,e)*(n-1) + e).
  return render + encode +
         std::max(render, encode) * static_cast<double>(tiles - 1);
}

RenderOutcome RenderFarm::schedule(const std::vector<RenderJob>& jobs) const {
  RenderOutcome outcome;
  outcome.user_completion_ms.assign(jobs.size(), 0.0);
  outcome.on_time.assign(jobs.size(), true);

  // LPT: sort job indices by stream cost descending, place each on the
  // least-loaded GPU.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> cost(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    cost[i] = stream_ms(jobs[i].tiles, jobs[i].level);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cost[a] > cost[b];
  });

  std::vector<double> gpu_load(static_cast<std::size_t>(config_.gpus), 0.0);
  for (std::size_t idx : order) {
    auto lightest =
        std::min_element(gpu_load.begin(), gpu_load.end()) - gpu_load.begin();
    gpu_load[static_cast<std::size_t>(lightest)] += cost[idx];
    outcome.user_completion_ms[idx] =
        gpu_load[static_cast<std::size_t>(lightest)];
    outcome.on_time[idx] =
        outcome.user_completion_ms[idx] <= config_.slot_budget_ms + 1e-9;
  }
  outcome.makespan_ms =
      jobs.empty() ? 0.0 : *std::max_element(gpu_load.begin(), gpu_load.end());
  return outcome;
}

std::size_t RenderFarm::max_tiles_per_user(std::size_t users,
                                           content::QualityLevel level) const {
  if (users == 0) return 0;
  std::size_t best = 0;
  for (std::size_t tiles = 1; tiles <= 64; ++tiles) {
    std::vector<RenderJob> jobs;
    jobs.reserve(users);
    for (std::size_t u = 0; u < users; ++u) jobs.push_back({u, tiles, level});
    const RenderOutcome outcome = schedule(jobs);
    if (std::all_of(outcome.on_time.begin(), outcome.on_time.end(),
                    [](bool ok) { return ok; })) {
      best = tiles;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace cvr::render
