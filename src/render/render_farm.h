// Online rendering and encoding (Section VIII, "Online rendering and
// encoding").
//
// The shipped system renders and encodes every tile offline because
// "the overhead of rendering and encoding for multiple quality levels
// makes it difficult to meet the synchronization performance required by
// the collaborative VR application. One possible solution is to
// coordinate multiple GPUs in a server to enable multiple encoders
// working in parallel with the rendering, which is also left for future
// work."
//
// This module models that future-work server: a farm of G GPUs, each
// with a renderer and a hardware encoder (NVENC-style). A slot's work is
// the set of (user, tile, level) jobs chosen by the allocator; tiles are
// scheduled across GPUs longest-processing-time-first. Per tile:
//   * sequential mode:  render_ms + encode_ms(level)  on one GPU;
//   * pipelined mode:   the encoder runs in parallel with the renderer,
//     so a stream of tiles costs max(render, encode) per tile after the
//     first (the Section-VIII proposal).
// The `ablation_online_rendering` bench sweeps GPU counts and shows when
// the farm meets the 15 ms slot.
#pragma once

#include <cstddef>
#include <vector>

#include "src/content/quality.h"

namespace cvr::render {

struct RenderFarmConfig {
  int gpus = 4;                      ///< The paper's server has 4 GPUs.
  double render_ms_per_tile = 1.6;   ///< Scene raster cost per tile.
  double encode_ms_base = 0.9;       ///< Encoder session overhead per tile.
  double encode_ms_per_level = 0.35; ///< Higher quality = slower encode.
  bool pipelined = true;             ///< Encoder parallel to renderer.
  double slot_budget_ms = 15.15;     ///< One slot at 66 FPS.
};

/// One user's slot workload: how many tiles at which level.
struct RenderJob {
  std::size_t user = 0;
  std::size_t tiles = 0;
  content::QualityLevel level = 1;
};

/// Result of scheduling one slot of jobs.
struct RenderOutcome {
  std::vector<double> user_completion_ms;  ///< Indexed by job order.
  std::vector<bool> on_time;               ///< completion <= budget.
  double makespan_ms = 0.0;                ///< Farm-wide finish time.
};

class RenderFarm {
 public:
  explicit RenderFarm(RenderFarmConfig config = {});

  const RenderFarmConfig& config() const { return config_; }

  /// Encode time of one tile at the given level.
  double encode_ms(content::QualityLevel level) const;

  /// Cost of a stream of `tiles` tiles at `level` on one GPU.
  double stream_ms(std::size_t tiles, content::QualityLevel level) const;

  /// Schedules the jobs for one slot: each job stays on a single GPU
  /// (tiles of one user/level form one encoder stream); jobs are placed
  /// LPT onto the least-loaded GPU. Returns per-job completion times.
  RenderOutcome schedule(const std::vector<RenderJob>& jobs) const;

  /// Largest per-user tile count the farm can sustain for `users` users
  /// all at `level`, within the slot budget. 0 if even one tile misses.
  std::size_t max_tiles_per_user(std::size_t users,
                                 content::QualityLevel level) const;

 private:
  RenderFarmConfig config_;
};

}  // namespace cvr::render
