#include "src/system/slot_pipeline.h"

#include <algorithm>
#include <cmath>

#include "src/motion/motion_generator.h"
#include "src/net/mm1.h"
#include "src/system/device.h"
#include "src/util/units.h"

namespace cvr::system {

ServerConfig derive_server_config(const SystemSimConfig& config) {
  // Server with the nominal aggregate the operator knows (Section VI).
  ServerConfig server_config = config.server;
  server_config.server_bandwidth_mbps =
      config.router_aggregate_mbps * static_cast<double>(config.routers);
  // A sparse-but-healthy pose cadence must never look like a blackout:
  // keep the staleness threshold clear of the configured upload period.
  server_config.pose_staleness_slots =
      std::max(server_config.pose_staleness_slots,
               2 * config.pose_upload_period + 2);
  return server_config;
}

std::vector<UserWorld> build_user_worlds(const SystemSimConfig& config,
                                         std::size_t repeat) {
  motion::MotionGenerator motion_gen(config.motion);
  std::vector<UserWorld> worlds;
  worlds.reserve(config.users);
  for (std::size_t u = 0; u < config.users; ++u) {
    // Lecture mode: everyone replays the teacher's (user 0's) motion.
    const std::uint64_t motion_user = config.lecture_mode ? 0 : u;
    const ClientConfig client_config =
        config.devices.empty()
            ? config.client
            : config.devices[u % config.devices.size()].client_config(
                  config.client.display_deadline_ms);
    worlds.push_back(UserWorld{
        motion_gen.generate(config.seed + 5000 * (repeat + 1), motion_user,
                            config.slots),
        Client(client_config),
        net::RtpTransport(config.rtp,
                          config.seed + 31 * (repeat + 1) + 1000 + u),
        core::UserQoeAccumulator(), 0,
        net::AckChannel<proto::DeliveryAck>{0},
        net::AckChannel<proto::ReleaseAck>{0}, faults::RecoveryTracker{}});
  }
  return worlds;
}

AccessNetwork build_access_network(const SystemSimConfig& config,
                                   std::size_t repeat, cvr::Rng& rng) {
  const std::size_t n_users = config.users;
  const std::size_t n_routers = config.routers;

  // Randomly assign TC throttles from the pool (Section VI).
  std::vector<double> throttles(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.throttle_pool_mbps.size()) - 1));
    throttles[u] = config.throttle_pool_mbps[pick];
  }

  // Users onto routers: the paper's contiguous group split, or
  // round-robin interleaving.
  AccessNetwork net;
  net.router_of.resize(n_users);
  net.router_users.resize(n_routers);
  const std::size_t group = (n_users + n_routers - 1) / n_routers;
  for (std::size_t u = 0; u < n_users; ++u) {
    const std::size_t r =
        config.router_assignment == RouterAssignment::kSplit
            ? std::min(u / group, n_routers - 1)
            : u % n_routers;
    net.router_of[u] = r;
    net.router_users[r].push_back(u);
  }
  net.routers.reserve(n_routers);
  for (std::size_t r = 0; r < n_routers; ++r) {
    std::vector<double> member_throttles;
    for (std::size_t u : net.router_users[r]) {
      member_throttles.push_back(throttles[u]);
    }
    net.routers.emplace_back(config.router_aggregate_mbps,
                             std::move(member_throttles), config.channel,
                             config.seed + 7919 * (repeat + 1) + r);
  }
  return net;
}

void step_routers(AccessNetwork& net, const faults::FaultSchedule& faults,
                  std::size_t t) {
  for (std::size_t r = 0; r < net.routers.size(); ++r) {
    net.routers[r].set_capacity_multiplier(
        faults.router_capacity_multiplier(r, t));
    net.routers[r].step();
  }
}

void upload_pose(Server& server, const UserWorld& world, std::size_t u,
                 std::size_t t, telemetry::Collector* telemetry) {
  proto::PoseUpdate upload;
  upload.user = static_cast<std::uint32_t>(u);
  upload.slot = t - 1;
  upload.pose = world.trace[t - 1];
  const proto::PoseUpdate received =
      proto::decode_pose_update(proto::encode(upload));
  server.on_pose(received.user, received.slot, received.pose);
  if (telemetry != nullptr) {
    telemetry->count(telemetry::Counter::kPoseUploads);
  }
}

std::vector<double> serve_routers(AccessNetwork& net,
                                  const std::vector<TileRequest>& requests,
                                  telemetry::Collector* telemetry,
                                  std::int64_t slot) {
  std::vector<double> granted(requests.size(), 0.0);
  telemetry::PhaseSpan serve_span(telemetry, telemetry::Phase::kTransport,
                                  telemetry::Collector::kServerPid, slot);
  for (std::size_t r = 0; r < net.routers.size(); ++r) {
    std::vector<double> demands;
    demands.reserve(net.router_users[r].size());
    for (std::size_t u : net.router_users[r]) {
      demands.push_back(requests[u].demand_mbps);
    }
    const auto grants = net.routers[r].serve(demands);
    for (std::size_t i = 0; i < net.router_users[r].size(); ++i) {
      granted[net.router_users[r][i]] = grants[i];
    }
  }
  return granted;
}

double router_capacity_for(const AccessNetwork& net, std::size_t u) {
  const auto& members = net.router_users[net.router_of[u]];
  const auto it = std::find(members.begin(), members.end(), u);
  return net.routers[net.router_of[u]].per_user_capacity(
      static_cast<std::size_t>(it - members.begin()));
}

void serve_absent_user(const SlotContext& ctx, std::size_t u, std::size_t t,
                       UserWorld& world, core::QualityLevel level,
                       double delta_estimate, double bandwidth_estimate) {
  // Off the network: nothing delivered, nothing displayed, no
  // feedback of any kind. The chosen level still enters the level
  // average (the allocator did budget for it) with zero displayed
  // quality; the missed frame depresses FPS naturally.
  world.qoe.record_displayed(level, 0.0, 0.0);
  world.recovery.record_slot(true, false, 0.0, false);
  if (ctx.timeline != nullptr) {
    SlotRecord record;
    record.slot = t;
    record.user = u;
    record.level = level;
    record.delta_estimate = delta_estimate;
    record.bandwidth_estimate_mbps = bandwidth_estimate;
    ctx.timeline->add(record);
  }
}

void serve_connected_user(const SlotContext& ctx, std::size_t u, std::size_t t,
                          UserWorld& world, const TileRequest& request,
                          core::QualityLevel level, double granted,
                          double capacity, bool ack_stalled, bool in_fault,
                          double delta_estimate, double bandwidth_estimate) {
  const SystemSimConfig& config = *ctx.config;
  Server& server = *ctx.server;
  telemetry::Collector* telemetry = ctx.telemetry;
  const std::int64_t slot = static_cast<std::int64_t>(t);

  // Realized delivery delay (ms): M/M/1 on the live link if the
  // router granted the full demand, saturated otherwise.
  double delay_ms = 0.0;
  if (request.demand_mbps > 1e-9) {
    const bool fully_granted = granted + 1e-9 >= request.demand_mbps;
    delay_ms = fully_granted ? net::mm1_delay(request.demand_mbps, capacity)
                             : net::kSaturatedDelay;
  }

  // RTP transmission of each (filtered) tile.
  const double utilization =
      capacity > 1e-9 ? std::clamp(request.demand_mbps / capacity, 0.0, 1.0)
                      : 1.0;
  SlotDelivery delivery;
  delivery.delay_ms = delay_ms;
  delivery.tiles = request.tiles;
  delivery.complete.reserve(request.tiles.size());
  std::uint64_t slot_packets = 0;
  std::uint64_t slot_lost = 0;
  double retx_delay_ms = 0.0;
  {
    telemetry::PhaseSpan tx_span(telemetry, telemetry::Phase::kTransport,
                                 telemetry::Collector::user_pid(u), slot);
    for (content::VideoId id : request.tiles) {
      const double megabits = server.content_db().tile_size_megabits(
          content::unpack_video_id(id));
      const auto tx =
          config.retransmit_rounds > 0
              ? world.transport.send_tile_with_retx(
                    megabits, utilization, config.retransmit_rounds, granted)
              : world.transport.send_tile(megabits, utilization);
      slot_packets += tx.packets + tx.retransmitted;
      slot_lost += tx.lost_packets;
      retx_delay_ms = std::max(retx_delay_ms, tx.extra_delay_ms);
      delivery.complete.push_back(tx.complete());
    }
  }
  delivery.delay_ms += retx_delay_ms;
  delay_ms += retx_delay_ms;
  if (telemetry != nullptr) {
    telemetry->count(telemetry::Counter::kPacketsSent, slot_packets);
    telemetry->count(telemetry::Counter::kPacketsLost, slot_lost);
  }

  // Ground truth for this frame (evaluated against the margin
  // actually delivered, which may be per-user when adaptive).
  const motion::Pose& actual = world.trace[t];
  motion::Pose predicted;
  motion::FovSpec user_fov;
  bool coverage_hit = false;
  {
    telemetry::PhaseSpan predict_span(telemetry, telemetry::Phase::kPredict,
                                      telemetry::Collector::user_pid(u), slot);
    predicted = server.predict_pose(u);
    user_fov = server.fov_for(u);
    coverage_hit = motion::covers(user_fov, predicted, actual);
  }

  // Needed tiles: the actual FoV's (unmargined) tile indices, looked
  // up at the *delivered* cell, gated separately by the position
  // tolerance (footnote 1: the margin never fixes position misses).
  const bool position_ok =
      predicted.position_distance(actual) <= user_fov.position_tolerance_m;
  std::vector<content::VideoId> needed;
  if (!request.full_set.empty()) {
    const content::TileKey delivered_key =
        content::unpack_video_id(request.full_set.front());
    int needed_tiles[content::kTilesPerFrame];
    const int needed_count =
        content::tiles_for_view(ctx.unmargined, actual, needed_tiles);
    needed.reserve(static_cast<std::size_t>(needed_count));
    for (int i = 0; i < needed_count; ++i) {
      needed.push_back(
          content::pack_video_id({delivered_key.cell, needed_tiles[i], level}));
    }
  }

  DisplayOutcome outcome;
  {
    telemetry::PhaseSpan decode_span(telemetry, telemetry::Phase::kDecode,
                                     telemetry::Collector::user_pid(u), slot);
    outcome = world.client.process_slot(delivery, needed);
  }
  const bool viewed = outcome.correct_content && position_ok;

  // Footnote-1 fallback: on a position miss, the frame can still
  // show the prefetched next cell at level 1 if the user actually
  // moved there and its tiles are resident.
  double displayed_quality = viewed ? static_cast<double>(level) : 0.0;
  if (!viewed && outcome.frame_on_time && !request.fallback_set.empty()) {
    const content::TileKey fallback_key =
        content::unpack_video_id(request.fallback_set.front());
    const double cell_m = content::kGridCellMeters;
    const double fx = fallback_key.cell.gx * cell_m;
    const double fy = fallback_key.cell.gy * cell_m;
    const double dist = std::hypot(actual.x - fx, actual.y - fy);
    const bool orientation_ok =
        std::abs(motion::angular_difference(predicted.yaw, actual.yaw)) <=
            user_fov.margin_deg &&
        std::abs(predicted.pitch - actual.pitch) <= user_fov.margin_deg;
    if (dist <= user_fov.position_tolerance_m && orientation_ok) {
      bool resident = true;
      int fb_tiles[content::kTilesPerFrame];
      const int fb_count =
          content::tiles_for_view(ctx.unmargined, actual, fb_tiles);
      for (int i = 0; i < fb_count; ++i) {
        if (!world.client.buffer().contains(
                content::pack_video_id({fallback_key.cell, fb_tiles[i], 1}))) {
          resident = false;
          break;
        }
      }
      if (resident) displayed_quality = 1.0;
    }
  }

  // QoE bookkeeping (accounting delay capped; see config).
  world.qoe.record_displayed(level, displayed_quality,
                             std::min(delay_ms, config.delay_accounting_cap_ms));
  if (coverage_hit) ++world.hits;
  world.recovery.record_slot(in_fault, viewed, displayed_quality,
                             outcome.frame_on_time);
  if (telemetry != nullptr) {
    if (coverage_hit) telemetry->count(telemetry::Counter::kCoverageHits);
    if (outcome.frame_on_time) {
      telemetry->count(telemetry::Counter::kFramesOnTime);
    }
  }
  telemetry::PhaseSpan feedback_span(telemetry, telemetry::Phase::kFeedback,
                                     telemetry::Collector::user_pid(u), slot);

  // Feedback to the server. The coverage outcome the real client can
  // report is whether the *delivered* portion covered what the user
  // actually saw — prediction misses AND loss/deadline casualties
  // both surface here. Feeding the realized outcome into delta_bar
  // is the negative-feedback loop that makes the delta-aware
  // allocator robust to network degradation (Fig. 8) while
  // delta-oblivious baselines keep overcommitting.
  if (!ack_stalled) {
    server.on_coverage_outcome(u, viewed);
    // Loss-free base channel for the loss-aware decomposition:
    // prediction covered AND the frame displayed on time.
    server.on_base_outcome(u, coverage_hit && outcome.frame_on_time);
    server.on_displayed_quality(u, displayed_quality);
  } else {
    // The TCP side channel's socket is down: every client->server
    // measurement this slot is lost, and so are in-flight ACKs. The
    // server's feedback-silence watchdog covers the gap.
    world.delivery_channel.drop_until(t + 1);
    world.release_channel.drop_until(t + 1);
  }
  // ACKs cross the TCP side channel in wire format; with the default
  // zero-latency channel a healthy slot's send/receive round-trip is
  // exactly a direct delivery.
  if (!outcome.delivery_acks.empty()) {
    proto::DeliveryAck ack;
    ack.user = static_cast<std::uint32_t>(u);
    ack.slot = t;
    ack.tiles = outcome.delivery_acks;
    world.delivery_channel.send(t,
                                proto::decode_delivery_ack(proto::encode(ack)));
  }
  if (!outcome.release_acks.empty()) {
    proto::ReleaseAck ack;
    ack.user = static_cast<std::uint32_t>(u);
    ack.slot = t;
    ack.tiles = outcome.release_acks;
    world.release_channel.send(t,
                               proto::decode_release_ack(proto::encode(ack)));
  }
  for (const proto::DeliveryAck& ack : world.delivery_channel.receive(t)) {
    server.on_delivery_acks(u, ack.tiles);
  }
  for (const proto::ReleaseAck& ack : world.release_channel.receive(t)) {
    server.on_release_acks(u, ack.tiles);
  }
  if (!ack_stalled) {
    if (request.demand_mbps > 1e-9) {
      server.on_delay_sample(
          u, request.demand_mbps,
          std::min(delay_ms, config.delay_measurement_window_ms));
    }
    if (slot_packets > 0) {
      server.on_loss_sample(u, utilization,
                            static_cast<double>(slot_lost) /
                                static_cast<double>(slot_packets));
    }
    // Bandwidth measurement: the achieved rate during the busy
    // period tracks the live capacity, observed with multiplicative
    // noise.
    const double measured =
        capacity * ctx.rng->lognormal(0.0, config.bandwidth_measurement_sigma);
    server.on_bandwidth_sample(u, measured);
  }

  if (ctx.timeline != nullptr) {
    SlotRecord record;
    record.slot = t;
    record.user = u;
    record.level = level;
    record.delta_estimate = delta_estimate;
    record.bandwidth_estimate_mbps = bandwidth_estimate;
    record.demand_mbps = request.demand_mbps;
    record.granted_mbps = granted;
    record.capacity_mbps = capacity;
    record.delay_ms = delay_ms;
    record.packets = slot_packets;
    record.packets_lost = slot_lost;
    record.frame_on_time = outcome.frame_on_time;
    record.displayed_quality = displayed_quality;
    ctx.timeline->add(record);
  }
}

sim::UserOutcome finalize_user_outcome(UserWorld& world,
                                       const SystemSimConfig& config) {
  const double hit_rate =
      static_cast<double>(world.hits) / static_cast<double>(config.slots);
  const double fps = static_cast<double>(world.client.frames_displayed()) /
                     static_cast<double>(config.slots) / cvr::kSlotSeconds;
  sim::UserOutcome outcome =
      sim::make_outcome(world.qoe, config.server.params, hit_rate, fps);
  world.recovery.finalize();
  outcome.fault_slots = static_cast<double>(world.recovery.fault_slots());
  outcome.time_to_recover_slots = world.recovery.mean_time_to_recover_slots();
  outcome.qoe_dip = world.recovery.quality_dip_depth();
  outcome.frames_dropped_in_fault =
      static_cast<double>(world.recovery.frames_dropped_in_fault());
  return outcome;
}

}  // namespace cvr::system
