// Client-side model: tile buffer, decoder pool, display deadline.
//
// Section V pipeline: tiles delivered in slot t+1 are decoded in t+2 and
// displayed immediately after; a frame is shown iff its (actual-FoV)
// tiles are resident and complete, they decode within the stage budget,
// and the delivery finished within the transmission slot. The client
// also measures the delivery delay (first-to-last packet of the slot)
// and emits delivery/release ACKs for the TCP side channel.
#pragma once

#include <cstddef>
#include <vector>

#include "src/content/client_buffer.h"
#include "src/content/tile.h"
#include "src/system/decoder.h"

namespace cvr::system {

struct ClientConfig {
  std::size_t buffer_threshold = 600;  ///< Device-dependent (Section V).
  DecoderPoolConfig decoder;
  double display_deadline_ms = 15.15;  ///< Delivery must fit its slot.
};

/// What the network delivered to a client in one slot.
struct SlotDelivery {
  std::vector<content::VideoId> tiles;  ///< Tiles transmitted this slot.
  std::vector<bool> complete;           ///< Per tile: no packet lost.
  double delay_ms = 0.0;                ///< First-to-last packet duration.
};

/// The client's verdict for one frame.
///
/// `frame_on_time` is the FPS criterion (Section VI: "with a larger VR
/// content delivery delay, the content cannot be decoded and displayed
/// on time, resulting in a missed frame") — a late/undecodable frame is
/// dropped, but a frame showing mispredicted content still displays.
/// `correct_content` additionally requires every actual-FoV tile to be
/// resident, i.e. the user actually saw the quality-q content.
struct DisplayOutcome {
  bool frame_on_time = false;    ///< Frame shown (FPS accounting).
  bool needed_resident = false;  ///< All actual-FoV tiles resident.
  bool correct_content = false;  ///< frame_on_time && needed_resident.
  double decode_ms = 0.0;
  std::vector<content::VideoId> delivery_acks;  ///< Completed tiles.
  std::vector<content::VideoId> release_acks;   ///< Evicted tiles.
};

class Client {
 public:
  explicit Client(ClientConfig config = {});

  /// Ingests a slot's delivery and attempts to display the frame whose
  /// actual FoV needs `needed` tiles (every tile in `needed` must be
  /// resident after ingestion for the frame's content to be correct).
  DisplayOutcome process_slot(const SlotDelivery& delivery,
                              const std::vector<content::VideoId>& needed);

  const content::ClientTileBuffer& buffer() const { return buffer_; }
  std::uint64_t frames_displayed() const { return frames_displayed_; }
  std::uint64_t frames_total() const { return frames_total_; }

 private:
  ClientConfig config_;
  content::ClientTileBuffer buffer_;
  DecoderPool decoders_;
  std::uint64_t frames_displayed_ = 0;
  std::uint64_t frames_total_ = 0;
};

}  // namespace cvr::system
