// The Sections V-VI prototype as a discrete-event emulation.
//
// Experiment setups (Section VI):
//   * setup 1 — 8 users, one 802.11ac router (400 Mbps aggregate);
//   * setup 2 — 15 users, two bridged routers (800 Mbps aggregate) with
//     interference mode on ("the variance of the bandwidth capacity is
//     even larger with two routers working together").
// Per-user Linux-TC throttles are drawn from {40, 45, 50, 55, 60} Mbps;
// alpha = 0.1, beta = 0.5; 5 repeats are averaged.
//
// Unlike the Section-IV simulator, the server works from *estimates*
// (EMA bandwidth, polynomial delay regression, delayed poses) and the
// network bites back (fading, interference bursts, RTP packet loss,
// decode deadlines) — reproducing why Firefly/PAVQ degrade in Figs. 7/8
// while the DV-greedy allocator stays robust.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/allocator.h"
#include "src/faults/fault_schedule.h"
#include "src/motion/motion_generator.h"
#include "src/net/rtp_transport.h"
#include "src/net/wireless_channel.h"
#include "src/render/render_farm.h"
#include "src/sim/metrics.h"
#include "src/system/client.h"
#include "src/telemetry/telemetry.h"
#include "src/system/device.h"
#include "src/system/server.h"
#include "src/system/timeline.h"

namespace cvr::system {

/// How users map onto routers. The paper "split the 15 users into two
/// groups" — a contiguous split (8 then 7) rather than interleaving.
enum class RouterAssignment {
  kRoundRobin,  ///< u % routers.
  kSplit,       ///< Contiguous groups of ceil(users / routers).
};

struct SystemSimConfig {
  std::size_t users = 8;
  std::size_t routers = 1;
  RouterAssignment router_assignment = RouterAssignment::kSplit;
  double router_aggregate_mbps = 400.0;  ///< Per router.
  std::vector<double> throttle_pool_mbps = {40.0, 45.0, 50.0, 55.0, 60.0};
  std::size_t slots = 1980;  ///< 30 s at 66 FPS per repeat.
  std::uint64_t seed = 11;
  /// Log-domain noise on the server's per-slot bandwidth measurement.
  double bandwidth_measurement_sigma = 0.15;
  /// Pose uploads happen every k-th slot (Section V: "periodically").
  /// 1 = every slot; larger saves uplink at the cost of staler
  /// predictions (`bench/ablation_pose_rate`).
  std::size_t pose_upload_period = 1;
  /// Cap on the delay fed into QoE accounting (a hopeless slot's
  /// first-to-last-packet measurement saturates; see DESIGN.md).
  double delay_accounting_cap_ms = 100.0;
  /// The client measures delay as the first-to-last-packet duration of
  /// the current slot (Section V), so a measured sample can never much
  /// exceed the measurement window — an overloaded slot reads as "the
  /// whole window", not as the queue's unbounded sojourn. This keeps the
  /// polynomial delay regressor well-conditioned.
  double delay_measurement_window_ms = 2.0 * 15.15;

  ServerConfig server;  ///< server.server_bandwidth_mbps is derived.
  ClientConfig client;
  /// Heterogeneous clients (Section VI's Pixel 6/5/4 mix): when
  /// non-empty, each user's ClientConfig comes from
  /// devices[u % devices.size()] instead of `client`.
  std::vector<DeviceProfile> devices;
  net::RtpConfig rtp;
  net::WirelessChannelConfig channel;  ///< interference derived from routers.
  motion::MotionGeneratorConfig motion;

  /// Lecture mode (Section V's pipeline example: "if the server receives
  /// the pose from the teacher at the time slot t, it will deliver the
  /// predicted tiles at time slot t + 1 to all users"): every user views
  /// the teacher's (user 0's) viewpoint — one shared motion trace, one
  /// shared prediction, per-user networks. Off by default (free-roam).
  bool lecture_mode = false;

  /// Section V: "RTP is built upon UDP such that we can concisely
  /// control the sending rate of the tiles and either retransmit the
  /// tiles or not." 0 = the shipped no-retransmission system; k > 0
  /// retries lost packets up to k rounds within the slot, trading delay
  /// for frame completeness (see `ablation_retransmission`).
  int retransmit_rounds = 0;

  /// Section VIII "Online rendering and encoding": when enabled, tiles
  /// are rendered+encoded just-in-time on a GPU farm instead of being
  /// pre-encoded offline; a slot whose render job misses the budget
  /// transmits nothing (the frame falls back to stale content).
  bool online_rendering = false;
  render::RenderFarmConfig render_farm;

  /// Discrete fault injection (docs/resilience.md): churn, blackouts,
  /// side-channel stalls, bandwidth cliffs, cache flushes, consumed per
  /// slot. The default (empty) schedule is strictly inert — every
  /// query answers "healthy" and the run is bit-identical to a build
  /// without the subsystem. Faulted runs fill the recovery-accounting
  /// fields of sim::UserOutcome.
  faults::FaultSchedule faults;

  /// Within-slot allocator parallelism: 0 = serial (default); k > 0
  /// lends the allocator a ThreadPool of resolve_thread_count(k)
  /// workers for its per-slot fork-join spans. Bit-identical results
  /// either way (see Allocator::set_thread_pool).
  std::size_t allocator_threads = 0;
};

/// Convenience constructors for the paper's two setups.
SystemSimConfig setup_one_router(std::size_t users = 8);
SystemSimConfig setup_two_routers(std::size_t users = 15);

class SystemSim {
 public:
  explicit SystemSim(SystemSimConfig config);

  /// Runs one repeat (fresh world, deterministic in (config.seed,
  /// repeat)); returns one outcome per user, FPS included. When
  /// `timeline` is non-null, one SlotRecord per (slot, user) is appended
  /// to it (the flight recorder; see timeline.h). When `telemetry` is
  /// non-null (and not kOff), per-slot phase timings and counters are
  /// recorded — measurement metadata only, never simulation input:
  /// outcomes are bit-identical across telemetry modes
  /// (docs/observability.md).
  std::vector<sim::UserOutcome> run(
      core::Allocator& allocator, std::size_t repeat,
      Timeline* timeline = nullptr,
      telemetry::Collector* telemetry = nullptr) const;

  /// Runs each allocator over `repeats` repeats; outcomes pooled.
  std::vector<sim::ArmResult> compare(
      const std::vector<core::Allocator*>& allocators,
      std::size_t repeats) const;

  const SystemSimConfig& config() const { return config_; }

 private:
  SystemSimConfig config_;
};

}  // namespace cvr::system
