#include "src/system/device.h"

#include <stdexcept>

namespace cvr::system {

ClientConfig DeviceProfile::client_config(double display_deadline_ms) const {
  ClientConfig config;
  config.buffer_threshold = buffer_threshold;
  config.decoder.decoders = decoders;
  config.decoder.decode_ms_per_tile = decode_ms_per_tile;
  config.decoder.stage_budget_ms = display_deadline_ms;
  config.display_deadline_ms = display_deadline_ms;
  return config;
}

DeviceProfile pixel6() {
  return DeviceProfile{"pixel6", 5, 2.2, 700};
}

DeviceProfile pixel5() {
  return DeviceProfile{"pixel5", 4, 3.0, 500};
}

DeviceProfile pixel4() {
  return DeviceProfile{"pixel4", 3, 3.8, 400};
}

std::vector<DeviceProfile> paper_fleet() {
  std::vector<DeviceProfile> fleet;
  for (int i = 0; i < 10; ++i) fleet.push_back(pixel6());
  for (int i = 0; i < 2; ++i) fleet.push_back(pixel5());
  for (int i = 0; i < 3; ++i) fleet.push_back(pixel4());
  return fleet;
}

std::vector<DeviceProfile> assign_devices(
    const std::vector<DeviceProfile>& fleet, std::size_t users) {
  if (fleet.empty()) {
    throw std::invalid_argument("assign_devices: empty fleet");
  }
  std::vector<DeviceProfile> out;
  out.reserve(users);
  for (std::size_t u = 0; u < users; ++u) out.push_back(fleet[u % fleet.size()]);
  return out;
}

}  // namespace cvr::system
