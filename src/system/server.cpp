#include "src/system/server.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "src/net/mm1.h"
#include "src/util/units.h"

namespace cvr::system {

Server::UserState::UserState(const ServerConfig& config)
    : predictor(config.predictor_kind ==
                        motion::PredictorKind::kLinearRegression
                    ? std::make_unique<motion::LinearMotionPredictor>(
                          config.predictor)
                    : motion::make_predictor(config.predictor_kind)),
      accuracy(),
      base_accuracy(),
      bandwidth(config.ema_alpha, config.initial_bandwidth_estimate_mbps),
      probing_bandwidth(config.probing),
      delay(),
      loss(),
      margin(config.fov.margin_deg, config.margin_controller),
      delivered(),
      cache(config.cache) {}

Server::Server(ServerConfig config, std::size_t users)
    : config_(config), content_db_(config.content) {
  if (users == 0) throw std::invalid_argument("Server: zero users");
  users_.reserve(users);
  for (std::size_t u = 0; u < users; ++u) users_.emplace_back(config_);
  if (config_.hevc.enabled) {
    hevc_.reserve(users);
    for (std::size_t u = 0; u < users; ++u) {
      hevc_.emplace_back(config_.hevc,
                         config_.hevc_seed + 1000003ull * (u + 1));
    }
  }
}

double Server::raw_bandwidth_estimate(const UserState& user) const {
  return config_.estimator_arm == EstimatorArm::kProbing
             ? user.probing_bandwidth.estimate_mbps()
             : user.bandwidth.estimate_mbps();
}

void Server::on_pose(std::size_t u, std::size_t t, const motion::Pose& pose) {
  UserState& user = users_.at(u);
  user.predictor->observe(t, pose);
  user.last_pose = pose;
  user.has_pose = true;
  user.last_pose_slot = t;
}

motion::Pose Server::predict_pose(std::size_t u) const {
  const UserState& user = users_.at(u);
  if (!user.has_pose) return motion::Pose{};
  // Persistence fallback: extrapolating a regression fitted to
  // pre-blackout motion diverges without bound as the gap grows, so a
  // pose-stale user is predicted exactly where they were last seen.
  if (user.pose_stale) return user.last_pose;
  // Poses arrive one slot late; the content is displayed one slot after
  // transmission (Section V pipeline), so predict two slots ahead of the
  // newest pose on record.
  return user.predictor->predict(2);
}

void Server::on_bandwidth_sample(std::size_t u, double mbps) {
  UserState& user = users_.at(u);
  if (config_.estimator_arm == EstimatorArm::kProbing) {
    // A probe slot's sample measured a deliberately saturated link;
    // weight it by the heavier probe alpha. An ack-stalled probe slot
    // never reaches this point — the stale flag is wiped on the next
    // problem build.
    if (user.probe_sample_pending) {
      user.probing_bandwidth.observe_probe(mbps);
      user.probe_sample_pending = false;
    } else {
      user.probing_bandwidth.observe_passive(mbps);
    }
  } else {
    user.bandwidth.observe(mbps);
  }
  user.last_feedback_slot = clock_;
}

void Server::on_delay_sample(std::size_t u, double rate_mbps,
                             double delay_ms) {
  UserState& user = users_.at(u);
  user.delay.observe(rate_mbps, delay_ms);
  user.last_feedback_slot = clock_;
}

void Server::on_loss_sample(std::size_t u, double utilization,
                            double loss_fraction) {
  users_.at(u).loss.observe(utilization, loss_fraction);
}

void Server::on_coverage_outcome(std::size_t u, bool hit) {
  UserState& user = users_.at(u);
  // Frozen delta_bar: outcomes produced while the user is degraded by a
  // watchdog measure the fault, not the predictor — folding them in
  // would poison the accuracy estimate long past recovery.
  if (user.safe_mode) return;
  user.accuracy.record(hit);
  if (config_.adaptive_margin) {
    user.margin.update(user.accuracy.estimate());
  }
}

motion::FovSpec Server::fov_for(std::size_t u) const {
  motion::FovSpec spec = config_.fov;
  if (config_.adaptive_margin) {
    spec.margin_deg = users_.at(u).margin.margin_deg();
  }
  return spec;
}

void Server::on_base_outcome(std::size_t u, bool hit) {
  UserState& user = users_.at(u);
  if (user.safe_mode) return;  // see on_coverage_outcome
  user.base_accuracy.record(hit);
}

void Server::on_displayed_quality(std::size_t u, double displayed_quality) {
  UserState& user = users_.at(u);
  user.viewed_quality_sum += displayed_quality;
  ++user.viewed_slots;
}

void Server::on_delivery_acks(std::size_t u,
                              const std::vector<content::VideoId>& acks) {
  UserState& user = users_.at(u);
  for (content::VideoId id : acks) user.delivered.mark_delivered(id);
}

void Server::on_release_acks(std::size_t u,
                             const std::vector<content::VideoId>& acks) {
  users_.at(u).delivered.mark_released(acks);
}

content::GridCell Server::clamped_cell(double x, double y) const {
  content::GridCell cell = content::cell_for_position(x, y);
  cell.gx = std::clamp(cell.gx, 0, content_db_.config().grid_width - 1);
  cell.gy = std::clamp(cell.gy, 0, content_db_.config().grid_height - 1);
  return cell;
}

core::SlotProblem Server::build_problem(std::size_t t) {
  core::SlotProblem problem;
  build_problem_into(t, problem);
  return problem;
}

void Server::fill_user_context(std::size_t t, std::size_t u,
                               core::UserSlotContext& ctx) {
  UserState& user = users_[u];

  // Watchdogs. Both are quiescent in a healthy run: poses refresh
  // last_pose_slot every upload period and every measurement refreshes
  // last_feedback_slot, so neither age ever crosses its threshold.
  const std::size_t pose_age = user.has_pose
                                   ? t - std::min(t, user.last_pose_slot)
                                   : t;
  user.pose_stale = pose_age > config_.pose_staleness_slots;
  const std::size_t silent = t - std::min(t, user.last_feedback_slot);
  const bool feedback_stale = silent > config_.feedback_staleness_slots;
  user.safe_mode = user.pose_stale || feedback_stale;
  if (user.safe_mode) ++user.safe_mode_slot_count;

  const motion::Pose predicted = predict_pose(u);
  const content::GridCell cell = clamped_cell(predicted.x, predicted.y);
  const content::CellContent& cc = content_db_.cell_content(cell);
  // HEVC realism (docs/workloads.md): the allocator prices this slot's
  // frame at its realized I/P-frame size, not the smooth CRF mean. One
  // process step per problem build keeps the stream aligned with the
  // slot clock.
  const double hevc_mult = hevc_.empty() ? 1.0 : hevc_[u].step();
  double b_hat = raw_bandwidth_estimate(user);
  if (feedback_stale) {
    // Bounded hold, then exponential decay toward the re-probe floor:
    // an estimate nobody has confirmed for `silent` slots is worth
    // less every slot it stays unconfirmed.
    b_hat = net::apply_stale_hold(b_hat, silent, config_.stale_hold);
  }
  // Probe accounting (kProbing arm): on a probe slot the probe's slice
  // of B_n is reserved before the allocator sees it — probes consume
  // the budget they measure. The split is bit-exact (split_probe_budget)
  // and make_request folds the probe traffic into the slot's demand.
  user.pending_probe_mbps = 0.0;
  user.probe_sample_pending = false;
  double allocator_bandwidth = b_hat;
  if (config_.estimator_arm == EstimatorArm::kProbing &&
      user.probing_bandwidth.probe_due(t)) {
    const net::BudgetSplit split = net::split_probe_budget(
        b_hat, user.probing_bandwidth.probe_budget_mbps());
    allocator_bandwidth = split.content_mbps;
    user.pending_probe_mbps = split.probe_mbps;
    user.probe_sample_pending = true;
  }
  const double qbar =
      user.viewed_slots == 0
          ? 0.0
          : user.viewed_quality_sum / static_cast<double>(user.viewed_slots);

  ctx.frame_loss.clear();  // recycled entry may carry last slot's table
  // Loss-aware mode decomposes success into (loss-free base) x
  // (1 - frame_loss); the published mode folds everything into delta.
  ctx.delta = config_.loss_aware ? user.base_accuracy.estimate()
                                 : user.accuracy.estimate();
  ctx.qbar = qbar;
  ctx.slot = static_cast<double>(t);
  ctx.user_bandwidth = allocator_bandwidth;
  if (user.safe_mode && config_.safe_mode_pin_level) {
    // Pin to level 1 through constraint (7): with B_n clamped to the
    // level-1 rate, no allocator can pick a higher level, so the
    // faulted user's stale estimates stop competing for the shared
    // server budget. Level 1 itself is the mandatory minimum and
    // stays allocated regardless (Allocator contract).
    ctx.user_bandwidth = std::min(ctx.user_bandwidth, cc.rate[0] * hevc_mult);
  }
  for (core::QualityLevel q = 1; q <= core::kNumQualityLevels; ++q) {
    const auto idx = static_cast<std::size_t>(q - 1);
    const double r = cc.rate[idx] * hevc_mult;
    ctx.rate[idx] = r;
    // A trained delay polynomial describes the regime its samples came
    // from; after prolonged silence that regime is suspect, so fall
    // back to the analytic M/M/1 curve on the held bandwidth.
    ctx.delay[idx] = feedback_stale
                         ? net::mm1_delay(r, b_hat) * cvr::kSlotMillis
                         : user.delay.predict_ms(r, b_hat);
    if (config_.loss_aware) {
      // Frame-loss estimate at this level: utilisation the level would
      // induce on the estimated link, times the packets actually at
      // risk (repetition suppression retransmits only a fraction of
      // the tile set each slot).
      const double util = b_hat > 1e-9 ? std::min(1.0, r / b_hat) : 1.0;
      const double packets = user.transmit_fraction * r *
                             cvr::kSlotSeconds * 1e6 /
                             config_.rtp_packet_bits;
      ctx.frame_loss.push_back(user.loss.frame_loss(util, packets));
    }
  }
}

void Server::build_problem_into(std::size_t t, core::SlotProblem& out) {
  clock_ = t;
  out.params = config_.params;
  out.server_bandwidth = config_.server_bandwidth_mbps;
  out.users.resize(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    fill_user_context(t, u, out.users[u]);
  }
}

void Server::build_problem_for(std::size_t t,
                               const std::vector<std::size_t>& members,
                               core::SlotProblem& out) {
  clock_ = t;
  out.params = config_.params;
  out.server_bandwidth = config_.server_bandwidth_mbps;
  out.users.resize(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    fill_user_context(t, members.at(i), out.users[i]);
  }
}

void Server::set_server_bandwidth(double mbps) {
  if (!std::isfinite(mbps) || mbps < 0.0) {
    throw std::invalid_argument("Server: invalid server bandwidth");
  }
  config_.server_bandwidth_mbps = mbps;
}

proto::UserHandoff Server::export_handoff(std::size_t u,
                                          std::size_t slot) const {
  const UserState& user = users_.at(u);
  proto::UserHandoff frame;
  frame.user = static_cast<std::uint32_t>(u);
  frame.slot = slot;
  frame.delta_hits = user.accuracy.hit_sum();
  frame.delta_count = user.accuracy.observations();
  frame.base_hits = user.base_accuracy.hit_sum();
  frame.base_count = user.base_accuracy.observations();
  frame.qbar_sum = user.viewed_quality_sum;
  frame.qbar_slots = user.viewed_slots;
  frame.bandwidth_mbps = raw_bandwidth_estimate(user);
  frame.bandwidth_observations =
      config_.estimator_arm == EstimatorArm::kProbing
          ? user.probing_bandwidth.observations()
          : user.bandwidth.observations();
  frame.has_pose = user.has_pose;
  if (user.has_pose) {
    frame.pose = user.last_pose;
    frame.pose_slot = user.last_pose_slot;
  }
  frame.safe_mode = user.safe_mode;
  frame.pose_stale = user.pose_stale;
  frame.transmit_fraction = std::clamp(user.transmit_fraction, 0.0, 1.0);
  return frame;
}

void Server::import_handoff(std::size_t u, const proto::UserHandoff& frame,
                            std::size_t now_slot) {
  reset_user(u);
  UserState& user = users_.at(u);
  user.accuracy.restore(frame.delta_hits, frame.delta_count);
  user.base_accuracy.restore(frame.base_hits, frame.base_count);
  if (config_.estimator_arm == EstimatorArm::kProbing) {
    user.probing_bandwidth.restore(frame.bandwidth_mbps,
                                   frame.bandwidth_observations);
  } else {
    user.bandwidth.restore(frame.bandwidth_mbps,
                           frame.bandwidth_observations);
  }
  user.viewed_quality_sum = frame.qbar_sum;
  user.viewed_slots = frame.qbar_slots;
  user.transmit_fraction = frame.transmit_fraction;
  user.safe_mode = frame.safe_mode;
  user.pose_stale = frame.pose_stale;
  if (frame.has_pose) {
    user.predictor->observe(frame.pose_slot, frame.pose);
    user.last_pose = frame.pose;
    user.has_pose = true;
    user.last_pose_slot = frame.pose_slot;
  }
  user.last_feedback_slot = now_slot;
  if (config_.adaptive_margin) {
    user.margin.update(user.accuracy.estimate());
  }
}

void Server::reset_user(std::size_t u) {
  users_.at(u) = UserState(config_);
  if (!hevc_.empty()) {
    // The codec process restarts from its seed: a crash-wiped user's
    // stream re-opens with a fresh GoP.
    hevc_[u] = content::HevcFrameProcess(
        config_.hevc, config_.hevc_seed + 1000003ull * (u + 1));
  }
}

core::UserSlotContext Server::candidate_context(const proto::UserHandoff& frame,
                                                std::size_t t) const {
  motion::AccuracyEstimator accuracy;
  accuracy.restore(frame.delta_hits, frame.delta_count);
  motion::AccuracyEstimator base_accuracy;
  base_accuracy.restore(frame.base_hits, frame.base_count);

  core::UserSlotContext ctx;
  ctx.delta = config_.loss_aware ? base_accuracy.estimate()
                                 : accuracy.estimate();
  ctx.qbar = frame.qbar_slots == 0
                 ? 0.0
                 : frame.qbar_sum / static_cast<double>(frame.qbar_slots);
  ctx.slot = static_cast<double>(t);
  ctx.user_bandwidth = frame.bandwidth_mbps;
  const motion::Pose pose = frame.has_pose ? frame.pose : motion::Pose{};
  const content::GridCell cell = clamped_cell(pose.x, pose.y);
  const content::CellContent& cc = content_db_.cell_content(cell);
  for (core::QualityLevel q = 1; q <= core::kNumQualityLevels; ++q) {
    const auto idx = static_cast<std::size_t>(q - 1);
    const double r = cc.rate[idx];
    ctx.rate[idx] = r;
    ctx.delay[idx] =
        net::mm1_delay(r, ctx.user_bandwidth) * cvr::kSlotMillis;
  }
  return ctx;
}

double Server::mandatory_load(const std::vector<std::size_t>& members) const {
  double total = 0.0;
  for (std::size_t u : members) {
    const motion::Pose predicted = predict_pose(u);
    const content::GridCell cell = clamped_cell(predicted.x, predicted.y);
    total += content_db_.cell_content(cell).rate[0];
  }
  return total;
}

TileRequest Server::make_request(std::size_t u, core::QualityLevel level) {
  UserState& user = users_.at(u);
  if (!content::is_valid_level(level)) {
    throw std::out_of_range("Server::make_request: invalid level");
  }
  const motion::Pose predicted = predict_pose(u);
  const content::GridCell cell = clamped_cell(predicted.x, predicted.y);
  if (!user.cache_primed || !(cell == user.cached_cell)) {
    user.cache.advance(cell);
    user.cached_cell = cell;
    user.cache_primed = true;
  }

  TileRequest request;
  request.level = level;
  int tile_indices[content::kTilesPerFrame];
  const int tile_count =
      content::tiles_for_view(fov_for(u), predicted, tile_indices);
  request.full_set.reserve(static_cast<std::size_t>(tile_count));
  for (int i = 0; i < tile_count; ++i) {
    const content::TileKey key{cell, tile_indices[i], level};
    const content::VideoId id = content::pack_video_id(key);
    user.cache.lookup(id);
    request.full_set.push_back(id);
  }
  request.tiles = config_.repetition_suppression
                      ? user.delivered.filter_needed(request.full_set)
                      : request.full_set;

  auto set_megabits = [&](const std::vector<content::VideoId>& ids) {
    double total = 0.0;
    for (content::VideoId id : ids) {
      total += content_db_.tile_size_megabits(content::unpack_video_id(id));
    }
    return total;
  };

  if (config_.fallback_prefetch) {
    // Directional level-1 fallback: the cell one step along the user's
    // estimated motion. A wrong-cell prediction then lands on content
    // that is at least viewable at the lowest level (footnote 1).
    const motion::Pose ahead = user.predictor->predict(6);
    const double dx = ahead.x - predicted.x;
    const double dy = ahead.y - predicted.y;
    content::GridCell fallback = cell;
    if (std::abs(dx) > std::abs(dy)) {
      fallback.gx += dx > 0 ? 1 : -1;
    } else if (std::abs(dy) > 0.0) {
      fallback.gy += dy > 0 ? 1 : -1;
    }
    fallback.gx = std::clamp(fallback.gx, 0, content_db_.config().grid_width - 1);
    fallback.gy = std::clamp(fallback.gy, 0, content_db_.config().grid_height - 1);
    if (!(fallback == cell)) {
      std::vector<content::VideoId> fallback_set;
      fallback_set.reserve(static_cast<std::size_t>(tile_count));
      for (int i = 0; i < tile_count; ++i) {
        fallback_set.push_back(
            content::pack_video_id({fallback, tile_indices[i], 1}));
      }
      const auto needed = user.delivered.filter_needed(fallback_set);
      // Insurance only when the link has headroom: never push the slot
      // past the configured fraction of the bandwidth estimate.
      const double with_fallback = cvr::megabits_to_slot_rate(
          set_megabits(request.tiles) + set_megabits(needed));
      if (with_fallback <= config_.fallback_headroom_fraction *
                               user.bandwidth.estimate_mbps()) {
        request.fallback_set = std::move(fallback_set);
        request.tiles.insert(request.tiles.end(), needed.begin(), needed.end());
      }
    }
  }

  const double megabits = set_megabits(request.tiles);
  request.demand_mbps = cvr::megabits_to_slot_rate(megabits);
  if (user.pending_probe_mbps > 0.0) {
    // The probe rides the same link as the content: its traffic contends
    // for airtime and inflates this slot's delay — measuring bandwidth
    // costs bandwidth.
    request.demand_mbps += user.pending_probe_mbps;
    user.pending_probe_mbps = 0.0;
  }

  // Track what fraction of the full tile set actually goes on the air
  // (repetition suppression), for the loss-aware packet estimates.
  double full_megabits = 0.0;
  for (content::VideoId id : request.full_set) {
    full_megabits += content_db_.tile_size_megabits(content::unpack_video_id(id));
  }
  if (full_megabits > 1e-12) {
    constexpr double kFractionAlpha = 0.05;
    user.transmit_fraction +=
        kFractionAlpha * (megabits / full_megabits - user.transmit_fraction);
  }
  return request;
}

const content::ServerTileCache& Server::cache(std::size_t u) const {
  return users_.at(u).cache;
}

double Server::bandwidth_estimate(std::size_t u) const {
  return raw_bandwidth_estimate(users_.at(u));
}

void Server::flush_caches() {
  for (UserState& user : users_) {
    user.cache = content::ServerTileCache(config_.cache);
    user.cache_primed = false;
    user.delivered = content::DeliveredTileTracker();
  }
}

bool Server::in_safe_mode(std::size_t u) const {
  return users_.at(u).safe_mode;
}

std::size_t Server::safe_mode_slots(std::size_t u) const {
  return users_.at(u).safe_mode_slot_count;
}

}  // namespace cvr::system
