// The per-slot machinery shared by system::SystemSim (one server) and
// fleet::FleetSim (K servers behind a controller; docs/fleet.md).
//
// SystemSim::run was one long loop; the fleet refactor splits it into
// reusable pieces — world construction, the access network, and the
// per-user serve/feedback path — WITHOUT changing a single operation or
// its order. SystemSim::run is now a thin composition of these helpers
// and stays bit-identical to the pre-refactor loop (guarded by the
// fleet_k1_identity test); FleetSim composes the same helpers per
// serving server, which is what makes "a K=1 fleet with an empty
// schedule is bit-identical to SystemSim" provable rather than hoped.
//
// Layering: the access network (routers, throttles) is keyed by user
// and does not move when a user migrates between edge servers — the
// radio link is where the user is, the compute is wherever the fleet
// controller says. Only the serving Server changes hands.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/allocator.h"
#include "src/core/qoe.h"
#include "src/faults/recovery.h"
#include "src/net/ack_channel.h"
#include "src/net/rtp_transport.h"
#include "src/net/wireless_channel.h"
#include "src/proto/messages.h"
#include "src/system/client.h"
#include "src/system/server.h"
#include "src/system/system_sim.h"
#include "src/system/timeline.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"

namespace cvr::system {

/// One user's client-side world: motion trace, device, transport, QoE
/// and recovery accounting, plus the TCP side channels ACKs ride.
struct UserWorld {
  motion::MotionTrace trace;
  Client client;
  net::RtpTransport transport;
  core::UserQoeAccumulator qoe;
  std::size_t hits = 0;
  // ACKs ride a zero-latency side channel so a fault can black it
  // out; with no blackout the send/receive round-trip inside one slot
  // is exactly the old direct call.
  net::AckChannel<proto::DeliveryAck> delivery_channel{0};
  net::AckChannel<proto::ReleaseAck> release_channel{0};
  faults::RecoveryTracker recovery;
};

/// The user-keyed radio access layer: which router each user sits
/// behind, the per-router member lists, and the routers themselves.
struct AccessNetwork {
  std::vector<std::size_t> router_of;
  std::vector<std::vector<std::size_t>> router_users;
  std::vector<net::Router> routers;
};

/// The single-server config derived from a sim config: nominal
/// aggregate bandwidth across all routers, pose-staleness threshold
/// kept clear of the upload period.
ServerConfig derive_server_config(const SystemSimConfig& config);

/// Builds every user's world for one repeat — deterministic in
/// (config.seed, repeat) and independent of server topology.
std::vector<UserWorld> build_user_worlds(const SystemSimConfig& config,
                                         std::size_t repeat);

/// Draws per-user TC throttles from `rng` (the shared measurement RNG —
/// these are its first draws of the repeat), assigns users to routers,
/// and constructs the routers with their per-repeat seeds.
AccessNetwork build_access_network(const SystemSimConfig& config,
                                   std::size_t repeat, cvr::Rng& rng);

/// Read-only bundle threaded through the per-user serve path.
struct SlotContext {
  const SystemSimConfig* config = nullptr;
  Server* server = nullptr;  ///< The server serving this user this slot.
  motion::FovSpec unmargined; ///< Ground-truth FoV (margin stripped).
  telemetry::Collector* telemetry = nullptr;
  Timeline* timeline = nullptr;
  cvr::Rng* rng = nullptr;   ///< Shared measurement-noise stream.
};

/// Applies the slot's router fault multipliers and steps every router.
void step_routers(AccessNetwork& net, const faults::FaultSchedule& faults,
                  std::size_t t);

/// One pose upload over the wire format (encode -> decode -> on_pose),
/// for the pose user `u` reported at slot t-1.
void upload_pose(Server& server, const UserWorld& world, std::size_t u,
                 std::size_t t, telemetry::Collector* telemetry);

/// Router service for the slot: per-router demand gather, serve, and
/// grant scatter back to user indexing.
std::vector<double> serve_routers(AccessNetwork& net,
                                  const std::vector<TileRequest>& requests,
                                  telemetry::Collector* telemetry,
                                  std::int64_t slot);

/// The live per-user capacity of the router serving `u`.
double router_capacity_for(const AccessNetwork& net, std::size_t u);

/// The slot outcome of a user who is off the network (disconnected
/// fault) or orphaned by a crashed edge server: nothing delivered,
/// nothing displayed, no feedback; the chosen level still enters the
/// level average with zero displayed quality and the missed frame
/// depresses FPS naturally. Always counts as a fault slot.
void serve_absent_user(const SlotContext& ctx, std::size_t u, std::size_t t,
                       UserWorld& world, core::QualityLevel level,
                       double delta_estimate, double bandwidth_estimate);

/// The full serve/display/feedback path of one connected user for one
/// slot: realized delay, RTP transmission, ground-truth coverage,
/// decode, footnote-1 fallback, QoE + recovery accounting, and the
/// feedback channels back to the serving server (unless ack-stalled).
/// Consumes exactly one draw from ctx.rng when not ack-stalled (the
/// bandwidth measurement's multiplicative noise).
void serve_connected_user(const SlotContext& ctx, std::size_t u, std::size_t t,
                          UserWorld& world, const TileRequest& request,
                          core::QualityLevel level, double granted,
                          double capacity, bool ack_stalled, bool in_fault,
                          double delta_estimate, double bandwidth_estimate);

/// Folds a finished world into its sim::UserOutcome (QoE, hit rate,
/// FPS, recovery accounting).
sim::UserOutcome finalize_user_outcome(UserWorld& world,
                                       const SystemSimConfig& config);

}  // namespace cvr::system
