// Hardware decoder pool model.
//
// Section VI: "Android Media Codec is used to accelerate the decoding of
// the delivered tile by using multiple parallel decoders ... we set the
// number to 5 during the experiment to avoid the performance degradation
// caused by the decoding." Each decoder decodes one tile at a time; a
// slot's tile batch is decoded in parallel waves and must finish within
// the decode-stage budget (one slot, per the Section V pipeline).
#pragma once

#include <cstddef>

namespace cvr::system {

struct DecoderPoolConfig {
  int decoders = 5;
  double decode_ms_per_tile = 2.5;  ///< Hardware-decode latency per tile.
  double stage_budget_ms = 15.15;   ///< One slot at 66 FPS.
};

class DecoderPool {
 public:
  explicit DecoderPool(DecoderPoolConfig config = {});

  const DecoderPoolConfig& config() const { return config_; }

  /// Time to decode `tiles` tiles with the parallel pool (ceil(tiles /
  /// decoders) sequential waves).
  double decode_time_ms(std::size_t tiles) const;

  /// True iff the batch decodes within the stage budget.
  bool on_time(std::size_t tiles) const;

  /// Largest batch that decodes within budget.
  std::size_t max_tiles_per_slot() const;

 private:
  DecoderPoolConfig config_;
};

}  // namespace cvr::system
