#include "src/system/decoder.h"

#include <cmath>
#include <stdexcept>

namespace cvr::system {

DecoderPool::DecoderPool(DecoderPoolConfig config) : config_(config) {
  if (config_.decoders <= 0 || config_.decode_ms_per_tile <= 0.0 ||
      config_.stage_budget_ms <= 0.0) {
    throw std::invalid_argument("DecoderPoolConfig: invalid parameters");
  }
}

double DecoderPool::decode_time_ms(std::size_t tiles) const {
  if (tiles == 0) return 0.0;
  const std::size_t waves =
      (tiles + static_cast<std::size_t>(config_.decoders) - 1) /
      static_cast<std::size_t>(config_.decoders);
  return static_cast<double>(waves) * config_.decode_ms_per_tile;
}

bool DecoderPool::on_time(std::size_t tiles) const {
  return decode_time_ms(tiles) <= config_.stage_budget_ms + 1e-9;
}

std::size_t DecoderPool::max_tiles_per_slot() const {
  const auto waves = static_cast<std::size_t>(
      std::floor(config_.stage_budget_ms / config_.decode_ms_per_tile + 1e-9));
  return waves * static_cast<std::size_t>(config_.decoders);
}

}  // namespace cvr::system
