#include "src/system/client.h"

#include <stdexcept>

namespace cvr::system {

Client::Client(ClientConfig config)
    : config_(config),
      buffer_(config.buffer_threshold),
      decoders_(config.decoder) {}

DisplayOutcome Client::process_slot(
    const SlotDelivery& delivery,
    const std::vector<content::VideoId>& needed) {
  if (delivery.tiles.size() != delivery.complete.size()) {
    throw std::invalid_argument("SlotDelivery: size/complete mismatch");
  }
  DisplayOutcome outcome;

  // Ingest complete tiles (an incomplete tile is undecodable and dropped
  // — Section VIII: no retransmission of lost RTP packets).
  std::size_t decoded_tiles = 0;
  for (std::size_t i = 0; i < delivery.tiles.size(); ++i) {
    if (!delivery.complete[i]) continue;
    ++decoded_tiles;
    outcome.delivery_acks.push_back(delivery.tiles[i]);
    auto released = buffer_.insert(delivery.tiles[i]);
    outcome.release_acks.insert(outcome.release_acks.end(), released.begin(),
                                released.end());
  }
  outcome.decode_ms = decoders_.decode_time_ms(decoded_tiles);

  // Display check: all needed tiles resident (touch refreshes recency so
  // actively viewed tiles are not the ones evicted).
  outcome.needed_resident = true;
  for (content::VideoId id : needed) {
    if (!buffer_.touch(id)) outcome.needed_resident = false;
  }

  const bool delivery_on_time =
      delivery.delay_ms <= config_.display_deadline_ms + 1e-9;
  const bool decode_on_time = decoders_.on_time(decoded_tiles);
  outcome.frame_on_time = delivery_on_time && decode_on_time;
  outcome.correct_content = outcome.frame_on_time && outcome.needed_resident;

  ++frames_total_;
  if (outcome.frame_on_time) ++frames_displayed_;
  return outcome;
}

}  // namespace cvr::system
