// Heterogeneous client devices.
//
// Section VI's testbed is not uniform: "fifteen off-the-shelf commercial
// smartphones (including ten Google Pixel 6, two Google Pixel 5 and
// three Google Pixel 4)", and Section V notes the number of hardware
// decoders and the tile-buffer threshold are device-dependent. A
// DeviceProfile bundles those per-device parameters; the paper-mix
// helper reproduces the 10/2/3 fleet.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/system/client.h"

namespace cvr::system {

struct DeviceProfile {
  std::string name = "generic";
  int decoders = 5;                 ///< Parallel hardware decoders.
  double decode_ms_per_tile = 2.5;  ///< Per-tile hardware decode latency.
  std::size_t buffer_threshold = 600;  ///< RAM-bounded tile residency.

  /// Client configuration this device implies, on top of the shared
  /// display deadline.
  ClientConfig client_config(double display_deadline_ms = 15.15) const;
};

/// The paper's devices (decoder/latency figures are representative of
/// each generation's MediaCodec capability; the paper pins 5 decoders on
/// the Pixel 6 "to avoid the performance degradation caused by the
/// decoding").
DeviceProfile pixel6();
DeviceProfile pixel5();
DeviceProfile pixel4();

/// The Section-VI fleet: ten Pixel 6, two Pixel 5, three Pixel 4
/// (teacher first, on the strongest device).
std::vector<DeviceProfile> paper_fleet();

/// Repeats/truncates a device list to cover `users` clients
/// round-robin. Throws std::invalid_argument on an empty list.
std::vector<DeviceProfile> assign_devices(
    const std::vector<DeviceProfile>& fleet, std::size_t users);

}  // namespace cvr::system
