#include "src/system/admission.h"

#include <cmath>
#include <stdexcept>

namespace cvr::system {

const char* admission_decision_name(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kDegrade:
      return "degrade";
    case AdmissionDecision::kReject:
      return "reject";
  }
  return "unknown";
}

proto::WireAdmission to_wire(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return proto::WireAdmission::kAdmit;
    case AdmissionDecision::kDegrade:
      return proto::WireAdmission::kDegrade;
    case AdmissionDecision::kReject:
      return proto::WireAdmission::kReject;
  }
  return proto::WireAdmission::kReject;
}

AdmissionDecision from_wire(proto::WireAdmission decision) {
  switch (decision) {
    case proto::WireAdmission::kAdmit:
      return AdmissionDecision::kAdmit;
    case proto::WireAdmission::kDegrade:
      return AdmissionDecision::kDegrade;
    case proto::WireAdmission::kReject:
      return AdmissionDecision::kReject;
  }
  return AdmissionDecision::kReject;
}

AdmissionController::AdmissionController(AdmissionPolicyConfig config)
    : config_(config) {
  if (!std::isfinite(config_.headroom_fraction) ||
      config_.headroom_fraction <= 0.0 || config_.headroom_fraction > 1.0) {
    throw std::invalid_argument(
        "AdmissionController: headroom_fraction must lie in (0, 1]");
  }
  if (!std::isfinite(config_.degrade_band) || config_.degrade_band < 0.0 ||
      config_.degrade_band >= 1.0) {
    throw std::invalid_argument(
        "AdmissionController: degrade_band must lie in [0, 1)");
  }
  if (!std::isfinite(config_.min_marginal_value)) {
    throw std::invalid_argument(
        "AdmissionController: min_marginal_value must be finite");
  }
}

AdmissionDecision AdmissionController::decide(
    const core::UserSlotContext& candidate, double mandatory_load_mbps,
    double server_bandwidth_mbps, std::size_t active_users,
    std::size_t capacity_users, const core::QoeParams& params) const {
  // No user slot at all: nothing to degrade into.
  if (active_users >= capacity_users) return AdmissionDecision::kReject;

  const double usable = config_.headroom_fraction * server_bandwidth_mbps;
  const double committed = mandatory_load_mbps + candidate.rate[0];

  // Even the all-ones minimum no longer fits: the allocator could not
  // honour the level-1 contract for everyone, so the session is turned
  // away outright.
  if (committed > usable + core::kFeasibilityEpsilon) {
    return AdmissionDecision::kReject;
  }

  const bool in_degrade_band =
      committed > (1.0 - config_.degrade_band) * usable;
  const bool low_value =
      core::h_value(candidate, 1, params) < config_.min_marginal_value;

  if (in_degrade_band || low_value) {
    return config_.enable_degrade ? AdmissionDecision::kDegrade
                                  : AdmissionDecision::kReject;
  }
  return AdmissionDecision::kAdmit;
}

}  // namespace cvr::system
