// Server-side model: prediction, estimation, request generation.
//
// Owns, per user: the 6-DoF linear-regression predictor (fed by poses
// arriving over the TCP side channel one slot late), the EMA bandwidth
// estimator and polynomial delay predictor (Section V), the online
// prediction-accuracy estimate delta_bar_n, the delivered-tile tracker
// (repetitive-tile suppression), and the in-memory tile cache window.
// Unlike the Section-IV simulator, everything the allocator sees here is
// an *estimate* — this is where the robustness differences of Figs. 7/8
// come from.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/content/content_db.h"
#include "src/content/delivered_tracker.h"
#include "src/content/hevc_process.h"
#include "src/content/equirect.h"
#include "src/content/server_cache.h"
#include "src/core/allocator.h"
#include "src/motion/accuracy.h"
#include "src/motion/fov.h"
#include "src/motion/predictor.h"
#include "src/motion/margin_controller.h"
#include "src/net/estimators.h"
#include "src/net/loss_estimator.h"
#include "src/proto/messages.h"

namespace cvr::system {

/// Which bandwidth-estimator arm drives the allocator's B_n
/// (docs/workloads.md). kEma is the paper's passive EMA; kProbing adds
/// periodic speedtest-style probes that consume slot budget while
/// measuring real headroom.
enum class EstimatorArm {
  kEma,
  kProbing,
};

struct ServerConfig {
  motion::FovSpec fov;
  motion::PredictorConfig predictor;
  /// Which prediction model drives the pipeline (Section II: "any
  /// existing motion prediction model can be applied"). The linear kind
  /// honours `predictor`; other kinds use their own defaults.
  motion::PredictorKind predictor_kind =
      motion::PredictorKind::kLinearRegression;
  content::ContentDbConfig content;
  content::ServerCacheConfig cache;
  double ema_alpha = 0.2;
  double initial_bandwidth_estimate_mbps = 40.0;
  /// Bandwidth-estimator arm. The default (kEma) is byte-identical to
  /// the pre-probing server; kProbing reserves probe_budget_mbps of B_n
  /// on probe slots (constraint (7) sees only the content portion), adds
  /// the probe traffic to the slot's demand, and feeds probe-slot
  /// measurements through the heavier alpha_probe weight.
  EstimatorArm estimator_arm = EstimatorArm::kEma;
  net::ProbingConfig probing;
  /// HEVC frame-size process (docs/workloads.md): when enabled, every
  /// user's allocator-visible rates f(q) are scaled by their per-slot
  /// I/P-frame size multiplier. Off by default (the smooth CRF point
  /// estimate, bit-identical).
  content::HevcProcessConfig hevc;
  /// Seed of the per-user HEVC processes (independent of every other
  /// stream; per-user offset applied internally).
  std::uint64_t hevc_seed = 0x48455643ull;
  double server_bandwidth_mbps = 400.0;  ///< Nominal router aggregate.
  core::QoeParams params{0.1, 0.5};      ///< Section VI values.
  /// Section VIII extension: attach estimated per-level frame-loss
  /// probabilities to the slot problem so loss-aware allocators can
  /// discount undecodable frames. Off by default (the published model).
  bool loss_aware = false;
  double rtp_packet_bits = 9600.0;  ///< For packets-per-frame estimates.
  /// Footnote-1 extension: also transmit the predicted-FoV tiles of the
  /// *next cell along the user's motion direction* at the lowest quality
  /// level, so a virtual-location misprediction degrades the frame to
  /// level 1 instead of dropping it. Off by default (the paper leaves
  /// location-error handling as future work).
  bool fallback_prefetch = false;
  /// The fallback is insurance, not load: it is only transmitted when
  /// the slot's total demand stays under this fraction of the user's
  /// estimated bandwidth (keeps the link away from the M/M/1 knee).
  double fallback_headroom_fraction = 0.7;
  /// Adaptive-margin extension: instead of the fixed margin of Section
  /// II, each user's delivered margin tracks their measured prediction
  /// success (see motion::MarginController). Off by default.
  bool adaptive_margin = false;
  motion::MarginControllerConfig margin_controller;
  /// Section V "Handling repetitive tiles": skip retransmitting tiles
  /// the client already holds. On by default (the shipped system);
  /// turning it off quantifies the mechanism's bandwidth savings
  /// (`bench/ablation_repetition`).
  bool repetition_suppression = true;

  /// Graceful-degradation watchdogs (docs/resilience.md). Quiescent in a
  /// healthy run — poses arrive every pose-upload period and
  /// measurements every slot, so neither threshold is ever crossed and
  /// the allocation path is byte-identical to the unhardened server.
  ///
  /// Slots without a fresh pose before the user enters safe mode:
  /// persistence prediction (hold the last pose instead of extrapolating
  /// stale motion), frozen delta_bar (blackout misses must not poison
  /// the accuracy estimate), and — when safe_mode_pin_level is on — the
  /// quality level pinned to 1. SystemSim raises this to at least
  /// 2 x pose_upload_period + 2 so sparse-but-healthy uploads never
  /// trigger it.
  std::size_t pose_staleness_slots = 12;
  /// Slots without any client measurement (bandwidth/delay feedback)
  /// before the EMA and delay estimates are treated as stale: the
  /// bandwidth estimate goes through the stale-hold decay and the delay
  /// table falls back to the analytic M/M/1 curve (the trained
  /// polynomial regressor may describe a regime that no longer exists).
  std::size_t feedback_staleness_slots = 12;
  net::StaleHoldConfig stale_hold;
  /// Safe-mode allocation path: clamp a faulted user's B_n below the
  /// level-2 rate so constraint (7) leaves only level 1 feasible — in
  /// every allocator, without touching any of them. A silent user's
  /// stale estimates then cannot starve healthy users through the
  /// shared sum f(q) <= B budget.
  bool safe_mode_pin_level = true;
};

/// One user's tile request for a slot.
struct TileRequest {
  core::QualityLevel level = 1;
  std::vector<content::VideoId> tiles;      ///< After repetition filtering.
  std::vector<content::VideoId> full_set;   ///< Before filtering.
  /// Fallback-prefetch extension: the level-1 tile set of the next cell
  /// along the motion direction (unfiltered; its filtered members are
  /// already merged into `tiles`). Empty when the feature is off or the
  /// user is stationary.
  std::vector<content::VideoId> fallback_set;
  double demand_mbps = 0.0;                 ///< Rate to send `tiles` this slot.
};

class Server {
 public:
  Server(ServerConfig config, std::size_t users);

  std::size_t user_count() const { return users_.size(); }

  /// Ingests the pose user `u` reported for slot `t` (already delayed by
  /// the side channel).
  void on_pose(std::size_t u, std::size_t t, const motion::Pose& pose);

  /// Server-side pose prediction for the upcoming slot.
  motion::Pose predict_pose(std::size_t u) const;

  /// Feeds the bandwidth sample measured for user `u` (Mbps).
  void on_bandwidth_sample(std::size_t u, double mbps);

  /// Feeds a measured delivery delay for a slot where `rate_mbps` was sent.
  void on_delay_sample(std::size_t u, double rate_mbps, double delay_ms);

  /// Feeds a measured packet-loss fraction at the given utilisation
  /// (Section VIII extension; harmless to call when loss_aware is off).
  void on_loss_sample(std::size_t u, double utilization,
                      double loss_fraction);

  /// Feeds the realized viewing outcome (updates delta_bar_n). In the
  /// published model this is the full "content correctly seen" signal —
  /// prediction, loss, and deadline folded together.
  void on_coverage_outcome(std::size_t u, bool hit);

  /// Loss-aware mode only: the loss-free base outcome (prediction
  /// coverage AND on-time display), so that packet loss is carried
  /// exclusively by the per-level frame_loss table instead of being
  /// double-counted inside delta_bar.
  void on_base_outcome(std::size_t u, bool hit);

  /// Updates qbar bookkeeping with the realized displayed-quality sample
  /// (0 = nothing correct seen; may be a fallback level below the chosen
  /// one).
  void on_displayed_quality(std::size_t u, double displayed_quality);

  /// Processes delivery / release ACKs from the client.
  void on_delivery_acks(std::size_t u,
                        const std::vector<content::VideoId>& acks);
  void on_release_acks(std::size_t u,
                       const std::vector<content::VideoId>& acks);

  /// Builds the slot problem for slot `t` (1-based) from current
  /// estimates. Delay tables come from each user's polynomial delay
  /// predictor (M/M/1 analytic fallback until trained).
  core::SlotProblem build_problem(std::size_t t);

  /// Same, into recycled storage: `out.users` is resized (capacity
  /// retained) and every field overwritten, so the per-slot build is
  /// allocation-free in steady state. The sim loop feeds it a
  /// SlotArena's problem (see src/core/slot_arena.h).
  void build_problem_into(std::size_t t, core::SlotProblem& out);

  /// Fleet variant (fleet::FleetSim, docs/fleet.md): builds the slot
  /// problem over an explicit member list instead of every user —
  /// out.users[i] describes members[i]. Per-user computation is shared
  /// with build_problem_into, so a full member list produces the
  /// identical problem. Only listed users advance their watchdog state
  /// this slot.
  void build_problem_for(std::size_t t, const std::vector<std::size_t>& members,
                         core::SlotProblem& out);

  /// Fleet budget hook: replaces the server bandwidth B that
  /// build_problem* stamps on the slot problem (constraint (6)). The
  /// controller calls this each slot with the server's share of the
  /// backhaul budget.
  void set_server_bandwidth(double mbps);
  double server_bandwidth() const { return config_.server_bandwidth_mbps; }

  /// Snapshots user `u`'s carried estimator state into a migration
  /// frame (proto::UserHandoff) stamped with `slot`. transmit_fraction
  /// is clamped to [0, 1] on export (the fallback-prefetch extension
  /// can push the raw EMA slightly above 1).
  proto::UserHandoff export_handoff(std::size_t u, std::size_t slot) const;

  /// Installs a migrated user's carried state into local slot `u`:
  /// resets the user, restores the accuracy tallies, bandwidth EMA,
  /// viewed-quality sums, watchdog flags and transmit fraction, and
  /// seeds the pose predictor with the frame's last pose (observed at
  /// its original pose_slot, so staleness keeps its meaning). The
  /// feedback clock restarts at `now_slot` — the destination has no
  /// measurement silence to hold against the user. Tile caches,
  /// delivered-tile trackers, and the delay/loss regressors start cold:
  /// they describe the source server's link, not this one.
  void import_handoff(std::size_t u, const proto::UserHandoff& frame,
                      std::size_t now_slot);

  /// Returns user `u` to the freshly-constructed state (all estimators
  /// at their priors). The fleet controller calls this on a crashed
  /// server's members — the crash wiped that state.
  void reset_user(std::size_t u);

  /// Admission pricing for a migration candidate: the slot context the
  /// carried state would produce at slot `t`, without touching any
  /// per-user state. Delay uses the analytic M/M/1 fallback (a
  /// candidate has no trained regressor here yet).
  core::UserSlotContext candidate_context(const proto::UserHandoff& frame,
                                          std::size_t t) const;

  /// Sum of the mandatory level-1 rates of `members` at their predicted
  /// cells — the admission controller's committed-load input.
  double mandatory_load(const std::vector<std::size_t>& members) const;

  /// Generates user `u`'s tile request at `level` for its predicted
  /// pose: predicted-FoV tiles at that level, minus already-delivered
  /// ones, priced via the content DB (also advances the tile cache).
  TileRequest make_request(std::size_t u, core::QualityLevel level);

  const content::ContentDb& content_db() const { return content_db_; }
  const content::ServerTileCache& cache(std::size_t u) const;
  double bandwidth_estimate(std::size_t u) const;

  /// Fault-injection hook (faults::FaultType::kCacheFlush): drops every
  /// user's warm tile cache and delivered-tile tracker, as a server
  /// crash-restart would. Estimators and predictors survive (they live
  /// in the allocator tier of a real deployment).
  void flush_caches();

  /// Whether user `u` is currently degraded by a watchdog (as of the
  /// last build_problem call).
  bool in_safe_mode(std::size_t u) const;
  /// Total slots user `u` has spent in safe mode (diagnostic).
  std::size_t safe_mode_slots(std::size_t u) const;

  /// The FoV spec currently in force for user `u` (config fov with the
  /// user's adaptive margin substituted when adaptive_margin is on).
  motion::FovSpec fov_for(std::size_t u) const;

 private:
  struct UserState {
    std::unique_ptr<motion::MotionPredictor> predictor;
    motion::AccuracyEstimator accuracy;
    motion::AccuracyEstimator base_accuracy;  ///< Loss-free (loss-aware mode).
    net::EmaThroughputEstimator bandwidth;
    net::ProbingThroughputEstimator probing_bandwidth;
    /// Probe traffic reserved for the slot being built (kProbing only;
    /// make_request folds it into the demand so probes consume real
    /// airtime).
    double pending_probe_mbps = 0.0;
    /// Whether the next bandwidth sample was measured on a probe slot.
    bool probe_sample_pending = false;
    net::DelayPredictor delay;
    net::LossEstimator loss;
    motion::MarginController margin;
    content::DeliveredTileTracker delivered;
    content::ServerTileCache cache;
    // Running mean of viewed quality (qbar_n) via simple accumulation.
    double viewed_quality_sum = 0.0;
    std::size_t viewed_slots = 0;
    motion::Pose last_pose;
    bool has_pose = false;
    // Watchdog clocks (slot numbers on the build_problem timeline).
    std::size_t last_pose_slot = 0;
    std::size_t last_feedback_slot = 0;
    bool safe_mode = false;
    bool pose_stale = false;
    std::size_t safe_mode_slot_count = 0;
    // Cache-window anchoring: advance() is O(window^2) and only needed
    // when the user enters a new cell.
    content::GridCell cached_cell{};
    bool cache_primed = false;
    // EMA of (transmitted rate) / (full tile-set rate): repetition
    // suppression means only this fraction of a frame's packets is at
    // loss risk in a slot.
    double transmit_fraction = 1.0;

    explicit UserState(const ServerConfig& config);
  };

  content::GridCell clamped_cell(double x, double y) const;
  /// Shared per-user body of build_problem_into / build_problem_for.
  void fill_user_context(std::size_t t, std::size_t u,
                         core::UserSlotContext& ctx);

  /// The active arm's bandwidth estimate for user `u` (stale-hold not
  /// applied; see fill_user_context).
  double raw_bandwidth_estimate(const UserState& user) const;

  ServerConfig config_;
  content::ContentDb content_db_;
  std::vector<UserState> users_;
  /// Per-user HEVC frame-size processes (empty when hevc.enabled is
  /// off). Stepped once per build_problem* call that covers the user.
  std::vector<content::HevcFrameProcess> hevc_;
  /// Latest slot seen by build_problem — the watchdogs' clock. Feedback
  /// callbacks stamp last_feedback_slot with it.
  std::size_t clock_ = 0;
};

}  // namespace cvr::system
