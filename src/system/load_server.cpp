#include "src/system/load_server.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>

#include "src/content/rate_function.h"
#include "src/core/registry.h"
#include "src/net/mm1.h"
#include "src/proto/messages.h"
#include "src/util/thread_pool.h"
#include "src/util/units.h"

namespace cvr::system {

namespace {

// p-th quantile of an unsorted sample set (nearest-rank on a sorted
// copy). Deterministic; returns 0 on an empty set.
double quantile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  index = index == 0 ? 0 : index - 1;
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

}  // namespace

LoadServer::LoadServer(LoadServiceConfig config) : config_(std::move(config)) {
  if (config_.capacity_users == 0) {
    throw std::invalid_argument("LoadServer: zero capacity_users");
  }
  if (!std::isfinite(config_.server_bandwidth_mbps) ||
      config_.server_bandwidth_mbps <= 0.0) {
    throw std::invalid_argument(
        "LoadServer: server_bandwidth_mbps must be positive");
  }
  if (!std::isfinite(config_.user_bandwidth_mbps) ||
      config_.user_bandwidth_mbps <= 0.0) {
    throw std::invalid_argument(
        "LoadServer: user_bandwidth_mbps must be positive");
  }
  if (!std::isfinite(config_.user_bandwidth_jitter) ||
      config_.user_bandwidth_jitter < 0.0 ||
      config_.user_bandwidth_jitter >= 1.0) {
    throw std::invalid_argument(
        "LoadServer: user_bandwidth_jitter must lie in [0, 1)");
  }
  if (!(config_.delta_min > 0.0) || !(config_.delta_max <= 1.0) ||
      config_.delta_min > config_.delta_max) {
    throw std::invalid_argument(
        "LoadServer: delta band must satisfy 0 < min <= max <= 1");
  }
  if (!std::isfinite(config_.slo_p99_ms) || config_.slo_p99_ms <= 0.0) {
    throw std::invalid_argument("LoadServer: slo_p99_ms must be positive");
  }
  if (!std::isfinite(config_.rate_scale_sigma) ||
      config_.rate_scale_sigma < 0.0) {
    throw std::invalid_argument(
        "LoadServer: rate_scale_sigma must be finite and >= 0");
  }
  if (config_.max_queue_depth == 0) {
    throw std::invalid_argument("LoadServer: max_queue_depth must be >= 1");
  }
  if (!core::make_allocator(config_.allocator,
                            core::AllocatorContext::kSystem)) {
    throw std::invalid_argument("LoadServer: unknown allocator '" +
                                config_.allocator + "'");
  }
  // AdmissionController and TrafficGenerator validate their own configs;
  // construct both here so a bad config fails at LoadServer construction,
  // not mid-run.
  AdmissionController check_admission(config_.admission);
  sim::TrafficGenerator check_traffic(config_.traffic, config_.capacity_users);
}

std::size_t LoadServer::level_cap(const Session& session) const {
  if (session.degrade_pinned) return 1;
  if (config_.ramp_slots_per_level == 0) {
    return static_cast<std::size_t>(content::kNumQualityLevels);
  }
  const std::size_t ramped = 1 + session.age_slots / config_.ramp_slots_per_level;
  return std::min<std::size_t>(
      ramped, static_cast<std::size_t>(content::kNumQualityLevels));
}

LoadServiceReport LoadServer::run(std::size_t slots,
                                  telemetry::Collector* collector) {
  sim::TrafficGenerator traffic(config_.traffic, config_.capacity_users);
  AdmissionController admission(config_.admission);
  auto allocator =
      core::make_allocator(config_.allocator, core::AllocatorContext::kSystem);
  // Optional within-slot pool (same contract as SystemSim): detached
  // before destruction so the allocator never dangles past this run.
  std::unique_ptr<cvr::ThreadPool> slot_pool;
  if (config_.allocator_threads > 0) {
    slot_pool = std::make_unique<cvr::ThreadPool>(
        cvr::resolve_thread_count(config_.allocator_threads));
  }
  allocator->set_thread_pool(slot_pool.get());
  struct PoolDetach {
    core::Allocator& allocator;
    ~PoolDetach() { allocator.set_thread_pool(nullptr); }
  } pool_detach{*allocator};
  // Session attributes come from a stream independent of the arrival
  // process, derived from the same master seed.
  cvr::Rng rng(config_.traffic.seed ^ 0x6C7F9D2E5A3B1810ull);

  telemetry::MetricsRegistry::HistogramId queue_hist = 0;
  const bool counting = collector != nullptr && collector->counting();
  if (counting) {
    queue_hist = collector->registry()->histogram(
        "svc_queue_depth", telemetry::exponential_edges(1.0, 2.0, 12));
  }

  const content::CrfRateFunction base_rate;
  const double budget = config_.server_bandwidth_mbps;

  std::vector<Session> active;
  active.reserve(config_.capacity_users);
  std::deque<proto::Buffer> pending;  // framed ConnectRequests
  std::vector<sim::SessionRequest> arrivals;
  core::SlotArena arena;
  core::Allocation allocation;
  std::vector<double> demand;
  std::vector<double> delay_samples;

  LoadServiceReport report;
  report.horizon_slots = slots;
  double active_sum = 0.0;
  double queue_sum = 0.0;
  std::size_t window_slots = 0;
  double delay_sum = 0.0;
  double qoe_sum = 0.0;
  double connect_credit = 0.0;

  // One paced admission decision, answering the framed request at the
  // head of the accept queue.
  const auto decide_one = [&](const proto::Buffer& frame, std::size_t t) {
    const proto::ConnectRequest request = proto::decode_connect_request(frame);
    Session session;
    session.id = request.session;
    session.qos_ms = request.qos_ms;
    session.user_bandwidth =
        config_.user_bandwidth_mbps *
        rng.uniform(1.0 - config_.user_bandwidth_jitter,
                    1.0 + config_.user_bandwidth_jitter);
    session.delta = rng.uniform(config_.delta_min, config_.delta_max);
    session.rate_scale =
        config_.rate_scale_sigma > 0.0
            ? std::exp(rng.normal(0.0, config_.rate_scale_sigma))
            : 1.0;

    const content::CrfRateFunction f(base_rate.base_mbps(), base_rate.growth(),
                                     session.rate_scale);
    double mandatory = 0.0;
    for (const Session& s : active) {
      mandatory += content::CrfRateFunction(base_rate.base_mbps(),
                                            base_rate.growth(), s.rate_scale)
                       .rate(1);
    }
    const core::UserSlotContext candidate =
        core::UserSlotContext::from_rate_function(f, session.user_bandwidth,
                                                  session.delta, 0.0, 1.0);
    const AdmissionDecision decision =
        admission.decide(candidate, mandatory, budget, active.size(),
                         config_.capacity_users, config_.params);

    proto::AdmitResponse response;
    response.session = request.session;
    response.slot = static_cast<std::uint64_t>(t);
    response.decision = to_wire(decision);
    response.level_cap =
        decision == AdmissionDecision::kReject
            ? 0
            : (decision == AdmissionDecision::kDegrade
                   ? 1
                   : static_cast<std::uint8_t>(content::kNumQualityLevels));
    const proto::AdmitResponse echoed =
        proto::decode_admit_response(proto::encode(response));

    switch (from_wire(echoed.decision)) {
      case AdmissionDecision::kAdmit:
        ++report.admitted;
        if (collector) collector->count(telemetry::Counter::kSessionsAdmitted);
        break;
      case AdmissionDecision::kDegrade:
        ++report.degraded;
        session.degrade_pinned = true;
        if (collector) collector->count(telemetry::Counter::kSessionsDegraded);
        break;
      case AdmissionDecision::kReject:
        ++report.rejected;
        if (collector) collector->count(telemetry::Counter::kSessionsRejected);
        return;
    }
    // The generator stamped the intended stay on the request id stream;
    // recover it from the arrival record (durations ride in the pending
    // entry alongside the frame — see the enqueue site).
    active.push_back(session);
  };

  // Durations are not part of the wire message (the server does not need
  // to know how long a client intends to stay); they travel next to the
  // framed request in the accept queue.
  std::deque<std::size_t> pending_durations;

  const auto enqueue_arrival = [&](const sim::SessionRequest& request,
                                   std::size_t t) {
    ++report.offered;
    if (collector) collector->count(telemetry::Counter::kSessionsOffered);
    proto::ConnectRequest connect;
    connect.session = request.id;
    connect.slot = static_cast<std::uint64_t>(t);
    connect.qos_ms = request.qos_ms;
    if (pending.size() >= config_.max_queue_depth) {
      // Listen backlog full: refused without an admission decision.
      ++report.rejected;
      if (collector) collector->count(telemetry::Counter::kSessionsRejected);
      return;
    }
    pending.push_back(proto::encode(connect));
    pending_durations.push_back(request.duration_slots);
  };

  const auto serve_slot = [&](std::size_t t, bool in_window) {
    if (active.empty()) return;
    {
      telemetry::PhaseSpan span(collector, telemetry::Phase::kProblemBuild,
                                telemetry::Collector::kServerPid,
                                static_cast<std::int64_t>(t));
      core::SlotProblem& problem = arena.acquire(active.size());
      problem.server_bandwidth = budget;
      problem.params = config_.params;
      for (std::size_t i = 0; i < active.size(); ++i) {
        Session& s = active[i];
        const content::CrfRateFunction f(base_rate.base_mbps(),
                                         base_rate.growth(), s.rate_scale);
        problem.users[i] = core::UserSlotContext::from_rate_function(
            f, s.user_bandwidth, s.delta, s.qoe.mean_viewed_quality(),
            static_cast<double>(s.age_slots + 1));
        // Ramp / degrade cap through the constraint-(7) clamp: with B_n
        // held at f(cap), no allocator can select a level above the cap.
        // The delay table above was built from the true B_n first, so
        // capped levels keep their honest delay entries.
        const std::size_t cap = level_cap(s);
        if (cap < static_cast<std::size_t>(content::kNumQualityLevels)) {
          problem.users[i].user_bandwidth =
              std::min(problem.users[i].user_bandwidth,
                       f.rate(static_cast<content::QualityLevel>(cap)));
        }
      }
    }
    {
      telemetry::PhaseSpan span(collector, telemetry::Phase::kAllocSolve,
                                telemetry::Collector::kServerPid,
                                static_cast<std::int64_t>(t));
      allocator->allocate_into(arena.problem(), allocation);
    }
    if (collector) collector->count_allocation(allocation.levels);

    telemetry::PhaseSpan span(collector, telemetry::Phase::kTransport,
                              telemetry::Collector::kServerPid,
                              static_cast<std::int64_t>(t));
    demand.clear();
    double total_demand = 0.0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const content::CrfRateFunction f(base_rate.base_mbps(),
                                       base_rate.growth(),
                                       active[i].rate_scale);
      const double d = f.rate(allocation.levels[i]);
      demand.push_back(d);
      total_demand += d;
    }
    // Congestion model: when the slot's aggregate demand exceeds B, the
    // router serves every user at a proportionally shrunk capacity —
    // the M/M/1 knee then produces the saturated delays that the
    // admission policy exists to prevent.
    const double squeeze =
        total_demand > budget ? budget / total_demand : 1.0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      Session& s = active[i];
      const double capacity = s.user_bandwidth * squeeze;
      const double delay_ms = net::mm1_delay(demand[i], capacity);
      const bool miss = delay_ms > s.qos_ms;
      if (in_window) {
        delay_samples.push_back(delay_ms);
        delay_sum += delay_ms;
        if (miss) {
          ++report.deadline_misses;
          if (collector) {
            collector->count(telemetry::Counter::kDeadlineMisses);
          }
        }
      }
      const bool viewed = !miss && rng.bernoulli(s.delta);
      s.qoe.record(allocation.levels[i], viewed, delay_ms);
      ++s.age_slots;
      --s.remaining_slots;
    }
    if (collector) collector->count(telemetry::Counter::kSlots);

    // Departures: an expiring session notifies the server and frees its
    // user slot (order-preserving erase keeps the loop deterministic
    // and the allocator's user indices stable-in-order).
    std::size_t kept = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (active[i].remaining_slots > 0) {
        if (kept != i) active[kept] = std::move(active[i]);
        ++kept;
        continue;
      }
      proto::DisconnectNotice notice;
      notice.session = active[i].id;
      notice.slot = static_cast<std::uint64_t>(t);
      const proto::DisconnectNotice echoed =
          proto::decode_disconnect_notice(proto::encode(notice));
      (void)echoed;
      qoe_sum += active[i].qoe.average_qoe(config_.params);
      ++report.completed_sessions;
    }
    active.resize(kept);
  };

  // --- Arrival horizon -----------------------------------------------
  for (std::size_t t = 0; t < slots; ++t) {
    arrivals.clear();
    traffic.arrivals_for_slot(t, arrivals);
    {
      telemetry::PhaseSpan span(collector, telemetry::Phase::kAdmission,
                                telemetry::Collector::kServerPid,
                                static_cast<std::int64_t>(t));
      for (const sim::SessionRequest& request : arrivals) {
        enqueue_arrival(request, t);
      }
      // connect_speed pacing: the server completes at most
      // connect_speed * kSlotSeconds admissions per slot (fractional
      // credit carries over), so a connection storm drains gradually.
      connect_credit += config_.traffic.connect_speed * kSlotSeconds;
      while (connect_credit >= 1.0 && !pending.empty() &&
             !pending_durations.empty()) {
        const proto::Buffer frame = std::move(pending.front());
        pending.pop_front();
        const std::size_t duration = pending_durations.front();
        pending_durations.pop_front();
        connect_credit -= 1.0;
        const std::size_t before = active.size();
        decide_one(frame, t);
        if (active.size() > before) {
          active.back().remaining_slots = std::max<std::size_t>(1, duration);
        }
      }
      if (connect_credit >= 1.0) connect_credit = 1.0;  // no banked bursts
    }

    report.peak_queue_depth = std::max(report.peak_queue_depth,
                                       pending.size());
    report.peak_active_users = std::max(report.peak_active_users,
                                        active.size());
    if (counting) {
      collector->registry()->record(queue_hist,
                                    static_cast<double>(pending.size()));
    }
    const bool in_window = t >= config_.warmup_slots;
    if (in_window) {
      ++window_slots;
      active_sum += static_cast<double>(active.size());
      queue_sum += static_cast<double>(pending.size());
    }
    serve_slot(t, in_window);
  }

  // Requests still queued when the horizon closes are refused.
  while (!pending.empty()) {
    pending.pop_front();
    pending_durations.pop_front();
    ++report.rejected;
    if (collector) collector->count(telemetry::Counter::kSessionsRejected);
  }

  // --- Drain ----------------------------------------------------------
  std::size_t drain = 0;
  while (!active.empty() && drain < config_.max_drain_slots) {
    serve_slot(slots + drain, /*in_window=*/false);
    ++drain;
  }
  report.drain_slots = drain;
  report.drained = active.empty();

  // --- Aggregate ------------------------------------------------------
  if (window_slots > 0) {
    report.mean_active_users =
        active_sum / static_cast<double>(window_slots);
    report.mean_queue_depth = queue_sum / static_cast<double>(window_slots);
  }
  report.delay_samples = delay_samples.size();
  if (!delay_samples.empty()) {
    report.mean_delay_ms =
        delay_sum / static_cast<double>(delay_samples.size());
    report.p99_delay_ms = quantile(delay_samples, 0.99);
  }
  report.slo_met = report.p99_delay_ms <= config_.slo_p99_ms;
  report.sustained_users = report.slo_met ? report.mean_active_users : 0.0;
  if (report.offered > 0) {
    report.reject_rate = static_cast<double>(report.rejected) /
                         static_cast<double>(report.offered);
  }
  if (report.completed_sessions > 0) {
    report.mean_session_qoe =
        qoe_sum / static_cast<double>(report.completed_sessions);
  }
  return report;
}

}  // namespace cvr::system
