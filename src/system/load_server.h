// The open-loop load service: a long-lived edge server under shaped
// session traffic.
//
// system::SystemSim answers "how good is the experience for N fixed
// users"; LoadServer answers the capacity-planning question — *how many
// users can one edge server sustain* when sessions arrive, stay, and
// leave on their own schedule. It is the batch per-slot pipeline turned
// into a service loop:
//
//   arrivals  — sim::TrafficGenerator emits SessionRequests (shaped
//               inter-arrival gaps, exponential session lengths);
//   accept    — each request is encoded as a proto::ConnectRequest,
//               framed, decoded server-side (the real wire contract,
//               in-process), and paced by `connect_speed`: the server
//               completes at most that many admissions per second,
//               excess requests wait in a bounded accept queue;
//   admission — AdmissionController prices the candidate against the
//               committed all-ones load (admit / degrade-admit via the
//               constraint-(7) clamp / reject), answered with a framed
//               proto::AdmitResponse;
//   serve     — every active session joins the per-slot allocation
//               problem (SlotArena + Allocator::allocate_into — the
//               PR-5 zero-allocation hot path); delivery delay per user
//               comes from the analytic M/M/1 model at the user's share
//               of the server budget, and feeds QoE bookkeeping and the
//               deadline/SLO accounting;
//   depart    — an expiring session sends a proto::DisconnectNotice and
//               frees its user slot; after the arrival horizon the
//               server drains until every session has left.
//
// Determinism contract: every simulation outcome derives from the
// seeded generators — the modeled delays, admission decisions, and the
// whole LoadServiceReport replay bit-identically for a fixed config
// (tests/load_server_test.cpp enforces this, and scripts/perf_gate.py
// gates the svc_* counters bit-exactly). Telemetry reads wall clocks
// but writes only to its own sinks; running with telemetry off or on
// yields the same report.
//
// SLO definition (docs/load_service.md): a *deadline miss* is one
// user-slot whose modeled delivery delay exceeds that session's QoS
// budget; the service meets its SLO when the p99 of all post-warmup
// delay samples is at or below `slo_p99_ms`. `sustained_users` is the
// mean active population over the post-warmup arrival horizon when the
// SLO holds, and 0 when it does not — "users per server at the SLO".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/allocator.h"
#include "src/core/qoe.h"
#include "src/core/slot_arena.h"
#include "src/sim/traffic_gen.h"
#include "src/system/admission.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"

namespace cvr::system {

/// Knobs of the service loop. Defaults describe one 802.11ac edge
/// server (the Section-VI setup-1 router) opened to shaped traffic.
struct LoadServiceConfig {
  /// Arrival process (shape, load, churn, qos, connect_speed, seed).
  sim::TrafficConfig traffic;
  /// User-slot capacity: the hard cap on concurrently served sessions
  /// (the paper's "users per server" denominator).
  std::size_t capacity_users = 32;
  /// Server aggregate B (Mbps), shared by constraint (6).
  double server_bandwidth_mbps = 400.0;
  /// Mean per-user link B_n (Mbps); each session draws
  /// B_n ~ U(mean * (1 - jitter), mean * (1 + jitter)).
  double user_bandwidth_mbps = 60.0;
  double user_bandwidth_jitter = 0.2;
  /// Per-session prediction-success probability delta ~ U(min, max).
  double delta_min = 0.75;
  double delta_max = 0.98;
  /// Allocation policy (core::make_allocator name).
  std::string allocator = "dv";
  AdmissionPolicyConfig admission;
  core::QoeParams params{0.1, 0.5};  ///< Section VI values.
  /// Service-level objective: p99 of post-warmup modeled delivery
  /// delays must not exceed this (ms).
  double slo_p99_ms = 20.0;
  /// Slots excluded from SLO / population statistics while the open
  /// loop fills to steady state.
  std::size_t warmup_slots = 200;
  /// Connection ramp-up: a freshly admitted session's quality-level cap
  /// starts at 1 and rises one level every `ramp_slots_per_level` slots
  /// (enforced through the same constraint-(7) clamp as degrade
  /// admission), so a burst of joins cannot yank bandwidth from
  /// established sessions in a single slot. 0 disables the ramp.
  std::size_t ramp_slots_per_level = 8;
  /// Accept-queue bound: pending connects beyond this are rejected
  /// immediately (the "listen backlog").
  std::size_t max_queue_depth = 256;
  /// Within-slot allocator parallelism, mirroring
  /// SystemSimConfig::allocator_threads: 0 = serial (default); k > 0
  /// lends the allocator a ThreadPool of resolve_thread_count(k)
  /// workers for its per-slot fork-join spans. Bit-identical results
  /// either way (see Allocator::set_thread_pool).
  std::size_t allocator_threads = 0;
  /// Safety valve on the drain phase (slots past the arrival horizon).
  std::size_t max_drain_slots = 120000;
  /// Per-session rate-function variation (content heterogeneity).
  double rate_scale_sigma = 0.10;
};

/// Aggregate outcome of one service run. Every field is a pure function
/// of the config (bit-reproducible); wall-clock time never enters.
struct LoadServiceReport {
  std::size_t horizon_slots = 0;  ///< Arrival horizon (excl. drain).
  std::size_t drain_slots = 0;    ///< Extra slots run to empty the server.
  bool drained = false;           ///< Every session departed cleanly.

  // Admission funnel.
  std::uint64_t offered = 0;   ///< SessionRequests generated.
  std::uint64_t admitted = 0;  ///< Fully admitted.
  std::uint64_t degraded = 0;  ///< Degrade-admitted (level-1 pin).
  std::uint64_t rejected = 0;  ///< Turned away (incl. queue overflow).
  double reject_rate = 0.0;    ///< rejected / offered (0 when none).

  // Population (post-warmup, arrival horizon only).
  double mean_active_users = 0.0;
  std::size_t peak_active_users = 0;
  double mean_queue_depth = 0.0;
  std::size_t peak_queue_depth = 0;

  // Latency / SLO (post-warmup modeled delivery delays, ms).
  std::uint64_t delay_samples = 0;
  double mean_delay_ms = 0.0;
  double p99_delay_ms = 0.0;
  std::uint64_t deadline_misses = 0;  ///< Samples above the session QoS.
  bool slo_met = false;               ///< p99_delay_ms <= slo_p99_ms.
  /// Users-per-server at the SLO: mean_active_users when slo_met, else 0.
  double sustained_users = 0.0;

  // Experience.
  double mean_session_qoe = 0.0;  ///< Mean per-completed-session avg QoE.
  std::uint64_t completed_sessions = 0;
};

class LoadServer {
 public:
  /// Validates the config (throws std::invalid_argument on a zero
  /// capacity, non-positive bandwidths, an out-of-range jitter or delta
  /// band, or an unknown allocator name).
  explicit LoadServer(LoadServiceConfig config);

  const LoadServiceConfig& config() const { return config_; }

  /// Runs the service for `slots` arrival slots plus a drain phase, and
  /// returns the aggregate report. Repeatable: each call replays the
  /// same stream from the config seed (internal state is re-seeded).
  /// When `collector` is non-null, phase timings (kAdmission,
  /// kProblemBuild, kAllocSolve, kTransport), the svc_* counters, and
  /// the svc_queue_depth histogram are recorded — measurement metadata
  /// only; the report is bit-identical across telemetry modes.
  LoadServiceReport run(std::size_t slots,
                        telemetry::Collector* collector = nullptr);

 private:
  struct Session {
    std::uint64_t id = 0;
    std::size_t remaining_slots = 0;
    std::size_t age_slots = 0;       ///< Slots served so far.
    double qos_ms = 0.0;             ///< Per-slot delivery budget.
    double user_bandwidth = 0.0;     ///< Drawn B_n (Mbps).
    double delta = 0.0;              ///< Prediction-success probability.
    double rate_scale = 1.0;         ///< Per-session rate-function scale.
    bool degrade_pinned = false;     ///< Degrade-admitted: level cap 1.
    core::UserQoeAccumulator qoe;
  };

  /// Quality-level cap currently in force for a session (degrade pin
  /// and connection ramp combined; kNumQualityLevels = uncapped).
  std::size_t level_cap(const Session& session) const;

  LoadServiceConfig config_;
};

}  // namespace cvr::system
