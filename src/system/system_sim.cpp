#include "src/system/system_sim.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "src/core/slot_arena.h"
#include "src/system/slot_pipeline.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace cvr::system {

SystemSimConfig setup_one_router(std::size_t users) {
  SystemSimConfig config;
  config.users = users;
  config.routers = 1;
  config.router_aggregate_mbps = 400.0;
  config.channel.interference = false;
  // Section VI's heterogeneous handset fleet (Pixel 6/5/4).
  config.devices = assign_devices(paper_fleet(), users);
  return config;
}

SystemSimConfig setup_two_routers(std::size_t users) {
  SystemSimConfig config;
  config.users = users;
  config.routers = 2;
  config.router_aggregate_mbps = 400.0;  // 800 Mbps total across both.
  config.channel.interference = true;
  config.devices = assign_devices(paper_fleet(), users);
  return config;
}

SystemSim::SystemSim(SystemSimConfig config) : config_(std::move(config)) {
  if (config_.users == 0 || config_.routers == 0 || config_.slots == 0) {
    throw std::invalid_argument("SystemSimConfig: zero users/routers/slots");
  }
  if (config_.throttle_pool_mbps.empty()) {
    throw std::invalid_argument("SystemSimConfig: empty throttle pool");
  }
  if (config_.pose_upload_period == 0) {
    throw std::invalid_argument("SystemSimConfig: zero pose upload period");
  }
}

std::vector<sim::UserOutcome> SystemSim::run(
    core::Allocator& allocator, std::size_t repeat, Timeline* timeline,
    telemetry::Collector* telemetry) const {
  const std::size_t n_users = config_.users;
  allocator.reset();
  // Optional within-slot pool, detached before destruction so the
  // allocator never holds a dangling pointer past this run.
  std::unique_ptr<cvr::ThreadPool> slot_pool;
  if (config_.allocator_threads > 0) {
    slot_pool = std::make_unique<cvr::ThreadPool>(
        cvr::resolve_thread_count(config_.allocator_threads));
  }
  allocator.set_thread_pool(slot_pool.get());
  struct PoolDetach {
    core::Allocator& allocator;
    ~PoolDetach() { allocator.set_thread_pool(nullptr); }
  } pool_detach{allocator};
  if (telemetry != nullptr && !telemetry->counting()) telemetry = nullptr;
  if (telemetry != nullptr && telemetry->tracing()) {
    telemetry->label_process(telemetry::Collector::kServerPid, "server");
    for (std::size_t u = 0; u < n_users; ++u) {
      telemetry->label_process(telemetry::Collector::user_pid(u),
                               "user " + std::to_string(u));
    }
  }

  cvr::SplitMix64 mixer(config_.seed ^
                        (0x5957E3Cull + repeat * 0x9E3779B97F4A7C15ull));
  cvr::Rng rng(mixer.next());

  AccessNetwork net = build_access_network(config_, repeat, rng);
  Server server(derive_server_config(config_), n_users);
  std::vector<UserWorld> worlds = build_user_worlds(config_, repeat);

  SlotContext ctx;
  ctx.config = &config_;
  ctx.server = &server;
  ctx.unmargined = derive_server_config(config_).fov;
  ctx.unmargined.margin_deg = 0.0;
  ctx.telemetry = telemetry;
  ctx.timeline = timeline;
  ctx.rng = &rng;

  const faults::FaultSchedule& faults = config_.faults;

  // Per-slot working storage, recycled across the horizon: the arena
  // recycles the SlotProblem the server builds into and the allocation
  // keeps its levels capacity, so the estimate->allocate hot path stays
  // heap-allocation-free in steady state (see src/core/slot_arena.h).
  core::SlotArena arena;
  core::Allocation allocation;

  for (std::size_t t = 0; t < config_.slots; ++t) {
    const std::int64_t slot = static_cast<std::int64_t>(t);
    telemetry::PhaseSpan slot_span(telemetry, telemetry::Phase::kSlot,
                                   telemetry::Collector::kServerPid, slot);
    step_routers(net, faults, t);

    // Server crash-restart: warm tile caches and delivered-tile state
    // vanish; estimators survive (the process kept its learned state,
    // the content cache did not).
    if (faults.cache_flush_at(t)) server.flush_caches();

    // Pose upload over the TCP side channel: one slot of latency, every
    // pose_upload_period-th slot ("upload the trace to the server
    // through TCP periodically"). The message rides the real wire format
    // (encode -> decode), so the protocol codec is exercised by every
    // simulated upload.
    if (t >= 1 && (t - 1) % config_.pose_upload_period == 0) {
      telemetry::PhaseSpan ingest_span(telemetry,
                                       telemetry::Phase::kPoseIngest,
                                       telemetry::Collector::kServerPid, slot);
      for (std::size_t u = 0; u < n_users; ++u) {
        // A disconnected or pose-blacked-out user uploads nothing; the
        // server's staleness watchdog takes it from here.
        if (faults.user_disconnected(u, t) || faults.pose_blackout(u, t)) {
          continue;
        }
        upload_pose(server, worlds[u], u, t, telemetry);
      }
    }

    // Allocation from estimates only.
    core::SlotProblem& problem = arena.acquire(n_users);
    {
      telemetry::PhaseSpan build_span(telemetry,
                                      telemetry::Phase::kProblemBuild,
                                      telemetry::Collector::kServerPid, slot);
      server.build_problem_into(t + 1, problem);
    }
    {
      telemetry::PhaseSpan solve_span(telemetry, telemetry::Phase::kAllocSolve,
                                      telemetry::Collector::kServerPid, slot);
      allocator.allocate_into(problem, allocation);
    }
    if (allocation.levels.size() != n_users) {
      throw std::logic_error("allocator returned wrong level count");
    }
    if (telemetry != nullptr) {
      telemetry->count_allocation(allocation.levels);
    }

    // Tile requests (repetition-filtered) and per-router service.
    std::vector<TileRequest> requests;
    requests.reserve(n_users);
    {
      telemetry::PhaseSpan fetch_span(telemetry,
                                      telemetry::Phase::kContentFetch,
                                      telemetry::Collector::kServerPid, slot);
      for (std::size_t u = 0; u < n_users; ++u) {
        if (faults.user_disconnected(u, t)) {
          // No device on the network: nothing to request, zero demand, and
          // the server's per-user caches stay untouched for the window.
          TileRequest idle;
          idle.level = allocation.levels[u];
          requests.push_back(std::move(idle));
          continue;
        }
        requests.push_back(server.make_request(u, allocation.levels[u]));
        if (telemetry != nullptr) {
          telemetry->count(telemetry::Counter::kTilesRequested,
                           requests.back().tiles.size());
        }
      }
    }

    // Online rendering (Section VIII): tiles must be rendered+encoded
    // within the slot before they can be transmitted; a late job ships
    // nothing this slot.
    if (config_.online_rendering) {
      const render::RenderFarm farm(config_.render_farm);
      std::vector<render::RenderJob> jobs;
      jobs.reserve(n_users);
      for (std::size_t u = 0; u < n_users; ++u) {
        jobs.push_back({u, requests[u].tiles.size(), allocation.levels[u]});
      }
      const render::RenderOutcome rendered = farm.schedule(jobs);
      for (std::size_t u = 0; u < n_users; ++u) {
        if (!rendered.on_time[u]) {
          requests[u].tiles.clear();
          requests[u].fallback_set.clear();
          requests[u].demand_mbps = 0.0;
        }
      }
    }
    const std::vector<double> granted =
        serve_routers(net, requests, telemetry, slot);

    for (std::size_t u = 0; u < n_users; ++u) {
      UserWorld& world = worlds[u];
      const bool disconnected = faults.user_disconnected(u, t);
      if (disconnected) {
        serve_absent_user(ctx, u, t, world, allocation.levels[u],
                          problem.users[u].delta,
                          problem.users[u].user_bandwidth);
        continue;
      }
      const bool ack_stalled = faults.ack_stalled(u, t);
      const bool in_fault = faults.any_fault_for_user(u, net.router_of[u], t);
      serve_connected_user(ctx, u, t, world, requests[u], allocation.levels[u],
                           granted[u], router_capacity_for(net, u),
                           ack_stalled, in_fault, problem.users[u].delta,
                           problem.users[u].user_bandwidth);
    }
    if (telemetry != nullptr) telemetry->count(telemetry::Counter::kSlots);
  }

  std::vector<sim::UserOutcome> outcomes;
  outcomes.reserve(n_users);
  for (auto& world : worlds) {
    outcomes.push_back(finalize_user_outcome(world, config_));
  }
  return outcomes;
}

std::vector<sim::ArmResult> SystemSim::compare(
    const std::vector<core::Allocator*>& allocators,
    std::size_t repeats) const {
  std::vector<sim::ArmResult> results;
  results.reserve(allocators.size());
  for (core::Allocator* allocator : allocators) {
    if (allocator == nullptr) {
      throw std::invalid_argument("compare: null allocator");
    }
    sim::ArmResult arm;
    arm.algorithm = std::string(allocator->name());
    for (std::size_t r = 0; r < repeats; ++r) {
      auto outcomes = run(*allocator, r);
      arm.outcomes.insert(arm.outcomes.end(), outcomes.begin(), outcomes.end());
    }
    results.push_back(std::move(arm));
  }
  return results;
}

}  // namespace cvr::system
