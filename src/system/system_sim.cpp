#include "src/system/system_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/core/slot_arena.h"
#include "src/faults/recovery.h"
#include "src/net/ack_channel.h"
#include "src/net/mm1.h"
#include "src/proto/messages.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace cvr::system {

SystemSimConfig setup_one_router(std::size_t users) {
  SystemSimConfig config;
  config.users = users;
  config.routers = 1;
  config.router_aggregate_mbps = 400.0;
  config.channel.interference = false;
  // Section VI's heterogeneous handset fleet (Pixel 6/5/4).
  config.devices = assign_devices(paper_fleet(), users);
  return config;
}

SystemSimConfig setup_two_routers(std::size_t users) {
  SystemSimConfig config;
  config.users = users;
  config.routers = 2;
  config.router_aggregate_mbps = 400.0;  // 800 Mbps total across both.
  config.channel.interference = true;
  config.devices = assign_devices(paper_fleet(), users);
  return config;
}

SystemSim::SystemSim(SystemSimConfig config) : config_(std::move(config)) {
  if (config_.users == 0 || config_.routers == 0 || config_.slots == 0) {
    throw std::invalid_argument("SystemSimConfig: zero users/routers/slots");
  }
  if (config_.throttle_pool_mbps.empty()) {
    throw std::invalid_argument("SystemSimConfig: empty throttle pool");
  }
  if (config_.pose_upload_period == 0) {
    throw std::invalid_argument("SystemSimConfig: zero pose upload period");
  }
}

std::vector<sim::UserOutcome> SystemSim::run(
    core::Allocator& allocator, std::size_t repeat, Timeline* timeline,
    telemetry::Collector* telemetry) const {
  const std::size_t n_users = config_.users;
  const std::size_t n_routers = config_.routers;
  allocator.reset();
  if (telemetry != nullptr && !telemetry->counting()) telemetry = nullptr;
  if (telemetry != nullptr && telemetry->tracing()) {
    telemetry->label_process(telemetry::Collector::kServerPid, "server");
    for (std::size_t u = 0; u < n_users; ++u) {
      telemetry->label_process(telemetry::Collector::user_pid(u),
                               "user " + std::to_string(u));
    }
  }

  cvr::SplitMix64 mixer(config_.seed ^
                        (0x5957E3Cull + repeat * 0x9E3779B97F4A7C15ull));
  cvr::Rng rng(mixer.next());

  // Randomly assign TC throttles from the pool (Section VI).
  std::vector<double> throttles(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config_.throttle_pool_mbps.size()) - 1));
    throttles[u] = config_.throttle_pool_mbps[pick];
  }

  // Users onto routers: the paper's contiguous group split, or
  // round-robin interleaving.
  std::vector<std::size_t> router_of(n_users);
  std::vector<std::vector<std::size_t>> router_users(n_routers);
  const std::size_t group = (n_users + n_routers - 1) / n_routers;
  for (std::size_t u = 0; u < n_users; ++u) {
    const std::size_t r =
        config_.router_assignment == RouterAssignment::kSplit
            ? std::min(u / group, n_routers - 1)
            : u % n_routers;
    router_of[u] = r;
    router_users[r].push_back(u);
  }
  std::vector<net::Router> routers;
  routers.reserve(n_routers);
  for (std::size_t r = 0; r < n_routers; ++r) {
    std::vector<double> member_throttles;
    for (std::size_t u : router_users[r]) member_throttles.push_back(throttles[u]);
    routers.emplace_back(config_.router_aggregate_mbps,
                         std::move(member_throttles), config_.channel,
                         config_.seed + 7919 * (repeat + 1) + r);
  }

  // Server with the nominal aggregate the operator knows (Section VI).
  ServerConfig server_config = config_.server;
  server_config.server_bandwidth_mbps =
      config_.router_aggregate_mbps * static_cast<double>(n_routers);
  // A sparse-but-healthy pose cadence must never look like a blackout:
  // keep the staleness threshold clear of the configured upload period.
  server_config.pose_staleness_slots =
      std::max(server_config.pose_staleness_slots,
               2 * config_.pose_upload_period + 2);
  Server server(server_config, n_users);

  motion::MotionGenerator motion_gen(config_.motion);
  motion::FovSpec unmargined = server_config.fov;
  unmargined.margin_deg = 0.0;

  struct UserWorld {
    motion::MotionTrace trace;
    Client client;
    net::RtpTransport transport;
    core::UserQoeAccumulator qoe;
    std::size_t hits = 0;
    // ACKs ride a zero-latency side channel so a fault can black it
    // out; with no blackout the send/receive round-trip inside one slot
    // is exactly the old direct call.
    net::AckChannel<proto::DeliveryAck> delivery_channel{0};
    net::AckChannel<proto::ReleaseAck> release_channel{0};
    faults::RecoveryTracker recovery;
  };
  std::vector<UserWorld> worlds;
  worlds.reserve(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    // Lecture mode: everyone replays the teacher's (user 0's) motion.
    const std::uint64_t motion_user = config_.lecture_mode ? 0 : u;
    const ClientConfig client_config =
        config_.devices.empty()
            ? config_.client
            : config_.devices[u % config_.devices.size()].client_config(
                  config_.client.display_deadline_ms);
    worlds.push_back(UserWorld{
        motion_gen.generate(config_.seed + 5000 * (repeat + 1), motion_user,
                            config_.slots),
        Client(client_config),
        net::RtpTransport(config_.rtp,
                          config_.seed + 31 * (repeat + 1) + 1000 + u),
        core::UserQoeAccumulator(), 0});
  }

  const faults::FaultSchedule& faults = config_.faults;

  // Per-slot working storage, recycled across the horizon: the arena
  // recycles the SlotProblem the server builds into and the allocation
  // keeps its levels capacity, so the estimate->allocate hot path stays
  // heap-allocation-free in steady state (see src/core/slot_arena.h).
  core::SlotArena arena;
  core::Allocation allocation;

  for (std::size_t t = 0; t < config_.slots; ++t) {
    const std::int64_t slot = static_cast<std::int64_t>(t);
    telemetry::PhaseSpan slot_span(telemetry, telemetry::Phase::kSlot,
                                   telemetry::Collector::kServerPid, slot);
    for (std::size_t r = 0; r < n_routers; ++r) {
      routers[r].set_capacity_multiplier(
          faults.router_capacity_multiplier(r, t));
      routers[r].step();
    }

    // Server crash-restart: warm tile caches and delivered-tile state
    // vanish; estimators survive (the process kept its learned state,
    // the content cache did not).
    if (faults.cache_flush_at(t)) server.flush_caches();

    // Pose upload over the TCP side channel: one slot of latency, every
    // pose_upload_period-th slot ("upload the trace to the server
    // through TCP periodically"). The message rides the real wire format
    // (encode -> decode), so the protocol codec is exercised by every
    // simulated upload.
    if (t >= 1 && (t - 1) % config_.pose_upload_period == 0) {
      telemetry::PhaseSpan ingest_span(telemetry,
                                       telemetry::Phase::kPoseIngest,
                                       telemetry::Collector::kServerPid, slot);
      for (std::size_t u = 0; u < n_users; ++u) {
        // A disconnected or pose-blacked-out user uploads nothing; the
        // server's staleness watchdog takes it from here.
        if (faults.user_disconnected(u, t) || faults.pose_blackout(u, t)) {
          continue;
        }
        proto::PoseUpdate upload;
        upload.user = static_cast<std::uint32_t>(u);
        upload.slot = t - 1;
        upload.pose = worlds[u].trace[t - 1];
        const proto::PoseUpdate received =
            proto::decode_pose_update(proto::encode(upload));
        server.on_pose(received.user, received.slot, received.pose);
        if (telemetry != nullptr) {
          telemetry->count(telemetry::Counter::kPoseUploads);
        }
      }
    }

    // Allocation from estimates only.
    core::SlotProblem& problem = arena.acquire(n_users);
    {
      telemetry::PhaseSpan build_span(telemetry,
                                      telemetry::Phase::kProblemBuild,
                                      telemetry::Collector::kServerPid, slot);
      server.build_problem_into(t + 1, problem);
    }
    {
      telemetry::PhaseSpan solve_span(telemetry, telemetry::Phase::kAllocSolve,
                                      telemetry::Collector::kServerPid, slot);
      allocator.allocate_into(problem, allocation);
    }
    if (allocation.levels.size() != n_users) {
      throw std::logic_error("allocator returned wrong level count");
    }
    if (telemetry != nullptr) {
      telemetry->count_allocation(allocation.levels);
    }

    // Tile requests (repetition-filtered) and per-router service.
    std::vector<TileRequest> requests;
    requests.reserve(n_users);
    {
      telemetry::PhaseSpan fetch_span(telemetry,
                                      telemetry::Phase::kContentFetch,
                                      telemetry::Collector::kServerPid, slot);
      for (std::size_t u = 0; u < n_users; ++u) {
        if (faults.user_disconnected(u, t)) {
          // No device on the network: nothing to request, zero demand, and
          // the server's per-user caches stay untouched for the window.
          TileRequest idle;
          idle.level = allocation.levels[u];
          requests.push_back(std::move(idle));
          continue;
        }
        requests.push_back(server.make_request(u, allocation.levels[u]));
        if (telemetry != nullptr) {
          telemetry->count(telemetry::Counter::kTilesRequested,
                           requests.back().tiles.size());
        }
      }
    }

    // Online rendering (Section VIII): tiles must be rendered+encoded
    // within the slot before they can be transmitted; a late job ships
    // nothing this slot.
    if (config_.online_rendering) {
      const render::RenderFarm farm(config_.render_farm);
      std::vector<render::RenderJob> jobs;
      jobs.reserve(n_users);
      for (std::size_t u = 0; u < n_users; ++u) {
        jobs.push_back({u, requests[u].tiles.size(), allocation.levels[u]});
      }
      const render::RenderOutcome rendered = farm.schedule(jobs);
      for (std::size_t u = 0; u < n_users; ++u) {
        if (!rendered.on_time[u]) {
          requests[u].tiles.clear();
          requests[u].fallback_set.clear();
          requests[u].demand_mbps = 0.0;
        }
      }
    }
    std::vector<double> granted(n_users, 0.0);
    {
      telemetry::PhaseSpan serve_span(telemetry, telemetry::Phase::kTransport,
                                      telemetry::Collector::kServerPid, slot);
      for (std::size_t r = 0; r < n_routers; ++r) {
        std::vector<double> demands;
        demands.reserve(router_users[r].size());
        for (std::size_t u : router_users[r]) {
          demands.push_back(requests[u].demand_mbps);
        }
        const auto grants = routers[r].serve(demands);
        for (std::size_t i = 0; i < router_users[r].size(); ++i) {
          granted[router_users[r][i]] = grants[i];
        }
      }
    }

    for (std::size_t u = 0; u < n_users; ++u) {
      UserWorld& world = worlds[u];
      const bool disconnected = faults.user_disconnected(u, t);
      const bool ack_stalled = faults.ack_stalled(u, t);
      const bool in_fault = faults.any_fault_for_user(u, router_of[u], t);
      if (disconnected) {
        // Off the network: nothing delivered, nothing displayed, no
        // feedback of any kind. The chosen level still enters the level
        // average (the allocator did budget for it) with zero displayed
        // quality; the missed frame depresses FPS naturally.
        world.qoe.record_displayed(allocation.levels[u], 0.0, 0.0);
        world.recovery.record_slot(true, false, 0.0, false);
        if (timeline != nullptr) {
          SlotRecord record;
          record.slot = t;
          record.user = u;
          record.level = allocation.levels[u];
          record.delta_estimate = problem.users[u].delta;
          record.bandwidth_estimate_mbps = problem.users[u].user_bandwidth;
          timeline->add(record);
        }
        continue;
      }
      const TileRequest& request = requests[u];
      const net::Router& router = routers[router_of[u]];
      const double capacity = [&] {
        const auto& members = router_users[router_of[u]];
        const auto it = std::find(members.begin(), members.end(), u);
        return router.per_user_capacity(
            static_cast<std::size_t>(it - members.begin()));
      }();

      // Realized delivery delay (ms): M/M/1 on the live link if the
      // router granted the full demand, saturated otherwise.
      double delay_ms = 0.0;
      if (request.demand_mbps > 1e-9) {
        const bool fully_granted =
            granted[u] + 1e-9 >= request.demand_mbps;
        delay_ms = fully_granted
                       ? net::mm1_delay(request.demand_mbps, capacity)
                       : net::kSaturatedDelay;
      }

      // RTP transmission of each (filtered) tile.
      const double utilization =
          capacity > 1e-9
              ? std::clamp(request.demand_mbps / capacity, 0.0, 1.0)
              : 1.0;
      SlotDelivery delivery;
      delivery.delay_ms = delay_ms;
      delivery.tiles = request.tiles;
      delivery.complete.reserve(request.tiles.size());
      std::uint64_t slot_packets = 0;
      std::uint64_t slot_lost = 0;
      double retx_delay_ms = 0.0;
      {
        telemetry::PhaseSpan tx_span(telemetry, telemetry::Phase::kTransport,
                                     telemetry::Collector::user_pid(u), slot);
        for (content::VideoId id : request.tiles) {
          const double megabits = server.content_db().tile_size_megabits(
              content::unpack_video_id(id));
          const auto tx =
              config_.retransmit_rounds > 0
                  ? world.transport.send_tile_with_retx(
                        megabits, utilization, config_.retransmit_rounds,
                        granted[u])
                  : world.transport.send_tile(megabits, utilization);
          slot_packets += tx.packets + tx.retransmitted;
          slot_lost += tx.lost_packets;
          retx_delay_ms = std::max(retx_delay_ms, tx.extra_delay_ms);
          delivery.complete.push_back(tx.complete());
        }
      }
      delivery.delay_ms += retx_delay_ms;
      delay_ms += retx_delay_ms;
      if (telemetry != nullptr) {
        telemetry->count(telemetry::Counter::kPacketsSent, slot_packets);
        telemetry->count(telemetry::Counter::kPacketsLost, slot_lost);
      }

      // Ground truth for this frame (evaluated against the margin
      // actually delivered, which may be per-user when adaptive).
      const motion::Pose& actual = world.trace[t];
      motion::Pose predicted;
      motion::FovSpec user_fov;
      bool coverage_hit = false;
      {
        telemetry::PhaseSpan predict_span(telemetry,
                                          telemetry::Phase::kPredict,
                                          telemetry::Collector::user_pid(u),
                                          slot);
        predicted = server.predict_pose(u);
        user_fov = server.fov_for(u);
        coverage_hit = motion::covers(user_fov, predicted, actual);
      }

      // Needed tiles: the actual FoV's (unmargined) tile indices, looked
      // up at the *delivered* cell, gated separately by the position
      // tolerance (footnote 1: the margin never fixes position misses).
      const bool position_ok =
          predicted.position_distance(actual) <= user_fov.position_tolerance_m;
      std::vector<content::VideoId> needed;
      if (!request.full_set.empty()) {
        const content::TileKey delivered_key =
            content::unpack_video_id(request.full_set.front());
        for (int tile : content::tiles_for_view(unmargined, actual)) {
          needed.push_back(content::pack_video_id(
              {delivered_key.cell, tile, allocation.levels[u]}));
        }
      }

      DisplayOutcome outcome;
      {
        telemetry::PhaseSpan decode_span(telemetry, telemetry::Phase::kDecode,
                                         telemetry::Collector::user_pid(u),
                                         slot);
        outcome = world.client.process_slot(delivery, needed);
      }
      const bool viewed = outcome.correct_content && position_ok;

      // Footnote-1 fallback: on a position miss, the frame can still
      // show the prefetched next cell at level 1 if the user actually
      // moved there and its tiles are resident.
      double displayed_quality =
          viewed ? static_cast<double>(allocation.levels[u]) : 0.0;
      if (!viewed && outcome.frame_on_time && !request.fallback_set.empty()) {
        const content::TileKey fallback_key =
            content::unpack_video_id(request.fallback_set.front());
        const double cell_m = content::kGridCellMeters;
        const double fx = fallback_key.cell.gx * cell_m;
        const double fy = fallback_key.cell.gy * cell_m;
        const double dist = std::hypot(actual.x - fx, actual.y - fy);
        const bool orientation_ok =
            std::abs(motion::angular_difference(predicted.yaw, actual.yaw)) <=
                user_fov.margin_deg &&
            std::abs(predicted.pitch - actual.pitch) <= user_fov.margin_deg;
        if (dist <= user_fov.position_tolerance_m && orientation_ok) {
          bool resident = true;
          for (int tile : content::tiles_for_view(unmargined, actual)) {
            if (!world.client.buffer().contains(content::pack_video_id(
                    {fallback_key.cell, tile, 1}))) {
              resident = false;
              break;
            }
          }
          if (resident) displayed_quality = 1.0;
        }
      }

      // QoE bookkeeping (accounting delay capped; see config).
      world.qoe.record_displayed(
          allocation.levels[u], displayed_quality,
          std::min(delay_ms, config_.delay_accounting_cap_ms));
      if (coverage_hit) ++world.hits;
      world.recovery.record_slot(in_fault, viewed, displayed_quality,
                                 outcome.frame_on_time);
      if (telemetry != nullptr) {
        if (coverage_hit) telemetry->count(telemetry::Counter::kCoverageHits);
        if (outcome.frame_on_time) {
          telemetry->count(telemetry::Counter::kFramesOnTime);
        }
      }
      telemetry::PhaseSpan feedback_span(telemetry,
                                         telemetry::Phase::kFeedback,
                                         telemetry::Collector::user_pid(u),
                                         slot);

      // Feedback to the server. The coverage outcome the real client can
      // report is whether the *delivered* portion covered what the user
      // actually saw — prediction misses AND loss/deadline casualties
      // both surface here. Feeding the realized outcome into delta_bar
      // is the negative-feedback loop that makes the delta-aware
      // allocator robust to network degradation (Fig. 8) while
      // delta-oblivious baselines keep overcommitting.
      if (!ack_stalled) {
        server.on_coverage_outcome(u, viewed);
        // Loss-free base channel for the loss-aware decomposition:
        // prediction covered AND the frame displayed on time.
        server.on_base_outcome(u, coverage_hit && outcome.frame_on_time);
        server.on_displayed_quality(u, displayed_quality);
      } else {
        // The TCP side channel's socket is down: every client->server
        // measurement this slot is lost, and so are in-flight ACKs. The
        // server's feedback-silence watchdog covers the gap.
        world.delivery_channel.drop_until(t + 1);
        world.release_channel.drop_until(t + 1);
      }
      // ACKs cross the TCP side channel in wire format; with the default
      // zero-latency channel a healthy slot's send/receive round-trip is
      // exactly a direct delivery.
      if (!outcome.delivery_acks.empty()) {
        proto::DeliveryAck ack;
        ack.user = static_cast<std::uint32_t>(u);
        ack.slot = t;
        ack.tiles = outcome.delivery_acks;
        world.delivery_channel.send(
            t, proto::decode_delivery_ack(proto::encode(ack)));
      }
      if (!outcome.release_acks.empty()) {
        proto::ReleaseAck ack;
        ack.user = static_cast<std::uint32_t>(u);
        ack.slot = t;
        ack.tiles = outcome.release_acks;
        world.release_channel.send(
            t, proto::decode_release_ack(proto::encode(ack)));
      }
      for (const proto::DeliveryAck& ack : world.delivery_channel.receive(t)) {
        server.on_delivery_acks(u, ack.tiles);
      }
      for (const proto::ReleaseAck& ack : world.release_channel.receive(t)) {
        server.on_release_acks(u, ack.tiles);
      }
      if (!ack_stalled) {
        if (request.demand_mbps > 1e-9) {
          server.on_delay_sample(
              u, request.demand_mbps,
              std::min(delay_ms, config_.delay_measurement_window_ms));
        }
        if (slot_packets > 0) {
          server.on_loss_sample(u, utilization,
                                static_cast<double>(slot_lost) /
                                    static_cast<double>(slot_packets));
        }
        // Bandwidth measurement: the achieved rate during the busy
        // period tracks the live capacity, observed with multiplicative
        // noise.
        const double measured =
            capacity * rng.lognormal(0.0, config_.bandwidth_measurement_sigma);
        server.on_bandwidth_sample(u, measured);
      }

      if (timeline != nullptr) {
        SlotRecord record;
        record.slot = t;
        record.user = u;
        record.level = allocation.levels[u];
        record.delta_estimate = problem.users[u].delta;
        record.bandwidth_estimate_mbps = problem.users[u].user_bandwidth;
        record.demand_mbps = request.demand_mbps;
        record.granted_mbps = granted[u];
        record.capacity_mbps = capacity;
        record.delay_ms = delay_ms;
        record.packets = slot_packets;
        record.packets_lost = slot_lost;
        record.frame_on_time = outcome.frame_on_time;
        record.displayed_quality = displayed_quality;
        timeline->add(record);
      }
    }
    if (telemetry != nullptr) telemetry->count(telemetry::Counter::kSlots);
  }

  std::vector<sim::UserOutcome> outcomes;
  outcomes.reserve(n_users);
  for (auto& world : worlds) {
    const double hit_rate =
        static_cast<double>(world.hits) / static_cast<double>(config_.slots);
    const double fps = static_cast<double>(world.client.frames_displayed()) /
                       static_cast<double>(config_.slots) / cvr::kSlotSeconds;
    sim::UserOutcome outcome = sim::make_outcome(
        world.qoe, config_.server.params, hit_rate, fps);
    world.recovery.finalize();
    outcome.fault_slots = static_cast<double>(world.recovery.fault_slots());
    outcome.time_to_recover_slots =
        world.recovery.mean_time_to_recover_slots();
    outcome.qoe_dip = world.recovery.quality_dip_depth();
    outcome.frames_dropped_in_fault =
        static_cast<double>(world.recovery.frames_dropped_in_fault());
    outcomes.push_back(outcome);
  }
  return outcomes;
}

std::vector<sim::ArmResult> SystemSim::compare(
    const std::vector<core::Allocator*>& allocators,
    std::size_t repeats) const {
  std::vector<sim::ArmResult> results;
  results.reserve(allocators.size());
  for (core::Allocator* allocator : allocators) {
    if (allocator == nullptr) {
      throw std::invalid_argument("compare: null allocator");
    }
    sim::ArmResult arm;
    arm.algorithm = std::string(allocator->name());
    for (std::size_t r = 0; r < repeats; ++r) {
      auto outcomes = run(*allocator, r);
      arm.outcomes.insert(arm.outcomes.end(), outcomes.begin(), outcomes.end());
    }
    results.push_back(std::move(arm));
  }
  return results;
}

}  // namespace cvr::system
