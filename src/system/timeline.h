// Per-slot instrumentation of the system emulation.
//
// When a Timeline is attached to SystemSim::run, every (slot, user) pair
// appends one record of what the scheduler saw (estimates), what it
// decided (level, demand), and what the network did to it (granted rate,
// delay, loss, display outcome). This is the flight recorder you reach
// for when a QoE regression needs explaining — and the raw material for
// time-series plots the aggregate metrics can't show.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "src/content/quality.h"
#include "src/util/csv.h"

namespace cvr::system {

struct SlotRecord {
  std::size_t slot = 0;
  std::size_t user = 0;
  content::QualityLevel level = 1;       ///< Allocator's choice.
  double delta_estimate = 0.0;           ///< delta_bar fed to h_n.
  double bandwidth_estimate_mbps = 0.0;  ///< EMA the allocator saw.
  double demand_mbps = 0.0;              ///< After repetition filtering.
  double granted_mbps = 0.0;             ///< Router's max-min grant.
  double capacity_mbps = 0.0;            ///< True air-link capacity.
  double delay_ms = 0.0;                 ///< Realized delivery delay.
  std::size_t packets = 0;               ///< RTP packets sent (incl. retx).
  std::size_t packets_lost = 0;
  bool frame_on_time = false;
  double displayed_quality = 0.0;        ///< 0, fallback, or level.
};

class Timeline {
 public:
  void add(const SlotRecord& record) { records_.push_back(record); }
  void clear() { records_.clear(); }

  const std::vector<SlotRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Records of one user, in slot order.
  std::vector<SlotRecord> for_user(std::size_t user) const {
    std::vector<SlotRecord> out;
    for (const auto& r : records_) {
      if (r.user == user) out.push_back(r);
    }
    return out;
  }

  /// Fraction of records where the link was saturated (demand exceeded
  /// the grant) — the congestion indicator for a run.
  double saturation_fraction() const {
    if (records_.empty()) return 0.0;
    std::size_t saturated = 0;
    for (const auto& r : records_) {
      if (r.demand_mbps > r.granted_mbps + 1e-9) ++saturated;
    }
    return static_cast<double>(saturated) /
           static_cast<double>(records_.size());
  }

  /// Mean absolute bandwidth-estimation error (estimate vs true
  /// capacity): the "imperfect information" a run suffered.
  double mean_bandwidth_error_mbps() const {
    if (records_.empty()) return 0.0;
    double total = 0.0;
    for (const auto& r : records_) {
      total += std::abs(r.bandwidth_estimate_mbps - r.capacity_mbps);
    }
    return total / static_cast<double>(records_.size());
  }

  /// Full dump: one CSV row per record, headered.
  CsvTable to_csv() const {
    CsvTable table;
    table.header = {"slot",         "user",          "level",
                    "delta_est",    "bandwidth_est", "demand_mbps",
                    "granted_mbps", "capacity_mbps", "delay_ms",
                    "packets",      "packets_lost",  "frame_on_time",
                    "displayed_quality"};
    table.rows.reserve(records_.size());
    for (const auto& r : records_) {
      table.rows.push_back({static_cast<double>(r.slot),
                            static_cast<double>(r.user),
                            static_cast<double>(r.level), r.delta_estimate,
                            r.bandwidth_estimate_mbps, r.demand_mbps,
                            r.granted_mbps, r.capacity_mbps, r.delay_ms,
                            static_cast<double>(r.packets),
                            static_cast<double>(r.packets_lost),
                            r.frame_on_time ? 1.0 : 0.0,
                            r.displayed_quality});
    }
    return table;
  }

 private:
  std::vector<SlotRecord> records_;
};

}  // namespace cvr::system
