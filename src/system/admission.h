// Admission control for the open-loop load service.
//
// The per-slot allocator (Algorithm 1) assumes the user set is given;
// under open-loop arrivals someone must decide whether the slot budget
// can carry one more user at all. The controller prices a candidate by
// what admission *forces* on every later slot: the mandatory all-ones
// minimum (the Allocator contract — level 1 is always delivered) adds
// the candidate's f(1) to the committed load, and once the committed
// load exhausts the configured headroom of the server budget B, the
// allocator's marginal value for raising anyone above level 1 is
// unpayable — every increment would displace someone's mandatory rate.
// Three bands follow:
//
//   * admit    — committed load stays below the admit threshold; the
//                new user competes for quality increments normally;
//   * degrade  — the budget can carry the user's level-1 rate but not
//                more: the session is admitted pinned to level 1
//                through the existing constraint-(7) safe-mode clamp
//                (user_bandwidth held at f(1), exactly the mechanism
//                graceful degradation uses — see docs/resilience.md);
//   * reject   — even the mandatory minimum does not fit (or every
//                user slot is taken): the session is turned away.
//
// Decisions are pure functions of their inputs — no internal state, no
// clocks — so the service loop replays bit-identically.
// See docs/load_service.md for the operator-facing policy description.
#pragma once

#include <cstddef>

#include "src/core/qoe.h"
#include "src/proto/messages.h"

namespace cvr::system {

/// Outcome of an admission decision, in increasing order of severity.
enum class AdmissionDecision {
  kAdmit,    ///< Full admission: all quality levels reachable.
  kDegrade,  ///< Admitted pinned to level 1 (constraint-(7) clamp).
  kReject,   ///< Turned away: no user slot or no mandatory-rate budget.
};

/// "admit" / "degrade" / "reject" (report and log labels).
const char* admission_decision_name(AdmissionDecision decision);

/// Conversions to/from the wire encoding (proto::AdmitResponse).
proto::WireAdmission to_wire(AdmissionDecision decision);
AdmissionDecision from_wire(proto::WireAdmission decision);

/// Policy knobs. Defaults keep ~10 % of B free for estimate error and
/// burst absorption, with a degrade band above the admit band.
struct AdmissionPolicyConfig {
  /// Fraction of the server budget B the committed (all-ones) load may
  /// occupy; the rest is headroom for quality increments and estimate
  /// error. Must lie in (0, 1].
  double headroom_fraction = 0.9;
  /// Width of the degrade band as a fraction of the usable budget: a
  /// candidate landing in (1 - degrade_band, 1] x usable budget is
  /// degrade-admitted instead of fully admitted. Must lie in [0, 1).
  double degrade_band = 0.15;
  /// When false, would-be degrade admissions become rejects (strict
  /// admission — the ablation knob).
  bool enable_degrade = true;
  /// A candidate whose level-1 marginal value h(1) falls below this is
  /// never fully admitted (degrade-admitted at best): its mandatory
  /// slot-rate buys almost no objective. 0 keeps the check inert for
  /// healthy contexts (h(1) > 0 whenever delta is non-trivial).
  double min_marginal_value = 0.0;
};

class AdmissionController {
 public:
  /// Validates the config (throws std::invalid_argument on an
  /// out-of-range headroom_fraction or degrade_band).
  explicit AdmissionController(AdmissionPolicyConfig config);

  const AdmissionPolicyConfig& config() const { return config_; }

  /// Decides one candidate. `mandatory_load_mbps` is the sum of f(1)
  /// over the currently admitted users (the committed all-ones load);
  /// `candidate` supplies the candidate's rate table and the h-model
  /// inputs; `params` are the service QoE weights. Monotone by
  /// construction: raising mandatory_load_mbps or active_users never
  /// turns a reject into an admit.
  AdmissionDecision decide(const core::UserSlotContext& candidate,
                           double mandatory_load_mbps,
                           double server_bandwidth_mbps,
                           std::size_t active_users,
                           std::size_t capacity_users,
                           const core::QoeParams& params) const;

 private:
  AdmissionPolicyConfig config_;
};

}  // namespace cvr::system
