// Constant-velocity Kalman-filter motion prediction.
//
// An alternative predictor for the Section-II hook ("any existing
// motion prediction model can be applied"). Each of the six axes runs an
// independent 2-state (position, velocity) Kalman filter with the
// constant-velocity transition model
//     x_{t+1} = x_t + v_t,   v_{t+1} = v_t + w,
// process noise on velocity, and noisy position measurements. Compared
// to sliding-window linear regression this weights recent evidence
// smoothly (no window cliff) and is more robust to measurement noise,
// at the cost of slower adaptation to sharp turns; the
// `ablation_predictors` bench quantifies the trade-off. Yaw/roll are
// unwrapped exactly as in LinearMotionPredictor.
#pragma once

#include <array>
#include <cstddef>

#include "src/motion/pose.h"
#include "src/motion/predictor_base.h"

namespace cvr::motion {

struct KalmanConfig {
  // Translation axes (metres): process noise sized for ~0.8 m/s^2 human
  // acceleration per 15 ms slot; measurement noise for the 5 cm grid
  // snap of the recorded poses.
  double position_process = 1e-4;
  double position_measurement = 3e-4;
  // Orientation axes (degrees): OU head motion jitters a few degrees
  // per slot.
  double angle_process = 2.0;
  double angle_measurement = 4.0;
};

/// One scalar constant-velocity Kalman filter (exposed for testing).
/// `process` is the velocity random-walk variance per slot, `measurement`
/// the observation variance, in the axis's own units squared.
class ScalarKalman {
 public:
  explicit ScalarKalman(double process = 1e-2, double measurement = 1e-2);

  /// Incorporates a measurement taken `dt` slots after the previous one
  /// (dt >= 1; gaps are handled by longer propagation).
  void update(double dt, double measurement);

  /// Predicted position `horizon` slots ahead of the last measurement.
  double predict(double horizon) const;

  double position() const { return x_; }
  double velocity() const { return v_; }
  bool primed() const { return primed_; }

 private:
  void propagate(double dt);

  double process_;
  double measurement_;
  // State estimate and covariance [[pxx, pxv], [pxv, pvv]].
  double x_ = 0.0, v_ = 0.0;
  double pxx_ = 1.0, pxv_ = 0.0, pvv_ = 1.0;
  bool primed_ = false;
};

class KalmanMotionPredictor final : public MotionPredictor {
 public:
  explicit KalmanMotionPredictor(KalmanConfig config = {});

  void observe(std::size_t t, const Pose& pose) override;
  Pose predict(std::size_t horizon = 1) const override;
  std::size_t observations() const override { return observations_; }

 private:
  KalmanConfig config_;
  std::array<ScalarKalman, 6> axes_;
  std::array<double, 6> last_raw_{};
  std::size_t observations_ = 0;
  std::size_t last_t_ = 0;
};

}  // namespace cvr::motion
