// Online estimation of the prediction-success probability delta_n.
//
// Section III: "This successful prediction probability can be estimated
// via the average prediction probability delta_bar_n(t), which converges
// to delta_n as t -> infinity." We provide both the running average the
// paper uses and an EMA variant for non-stationary users, plus an
// optimistic prior so the very first slots do not see delta = 0.
#pragma once

#include <cstddef>

namespace cvr::motion {

class AccuracyEstimator {
 public:
  /// `prior` is the assumed success probability before any evidence;
  /// `prior_weight` is how many pseudo-observations it is worth.
  explicit AccuracyEstimator(double prior = 0.9, double prior_weight = 5.0);

  /// Records whether the delivered portion covered the actual FoV.
  void record(bool hit);

  /// Running-average estimate delta_bar_n(t) (with prior smoothing).
  double estimate() const;

  std::size_t observations() const { return count_; }

  /// Raw hit tally behind estimate() — together with observations()
  /// this is the estimator's full posterior state, carried across
  /// server migrations in proto::UserHandoff.
  double hit_sum() const { return hits_; }

  /// Restores the tallies from a handoff frame (prior stays local).
  /// Throws std::invalid_argument when hits is non-finite, negative, or
  /// exceeds count — the frame validator enforces the same bound.
  void restore(double hits, std::size_t count);

 private:
  double prior_;
  double prior_weight_;
  double hits_ = 0.0;
  std::size_t count_ = 0;
};

/// Exponential-moving-average variant; tracks slow drift in user
/// predictability (e.g. a user switching from browsing to fast gaming).
class EmaAccuracyEstimator {
 public:
  explicit EmaAccuracyEstimator(double alpha = 0.05, double initial = 0.9);

  void record(bool hit);
  double estimate() const { return value_; }

 private:
  double alpha_;
  double value_;
};

}  // namespace cvr::motion
