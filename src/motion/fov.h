// Field-of-view coverage with prediction margin.
//
// Section II: the user sees ~20% of the panorama (the FoV); the server
// delivers the predicted FoV plus a fixed margin, and 1_n(t) = 1 iff the
// delivered portion covers the *actual* FoV (both virtual location and
// head orientation). Footnote 1: "The extended margin on FoV only helps
// in the prediction of 3 DoFs for head orientation" — so the location
// must land in the delivered content's grid cell window, while yaw/pitch
// errors are absorbed by the margin.
#pragma once

#include "src/motion/pose.h"

namespace cvr::motion {

struct FovSpec {
  double horizontal_deg = 90.0;  ///< Typical mobile-HMD FoV.
  double vertical_deg = 90.0;
  double margin_deg = 15.0;      ///< Extra delivered margin per side.
  /// Delivered content is rendered for a grid cell window around the
  /// predicted location; the actual location must fall within this radius
  /// for the content to be usable (the 5 cm grid world of Section VI with
  /// a small cache window).
  double position_tolerance_m = 0.10;
};

/// True iff content delivered for `predicted` (FoV + margin) covers the
/// user's actual FoV at `actual`.
bool covers(const FovSpec& spec, const Pose& predicted, const Pose& actual);

/// Fraction of the panorama one delivered portion spans (FoV + margin),
/// used for sanity checks against the paper's "about 20%" figure.
double delivered_panorama_fraction(const FovSpec& spec);

}  // namespace cvr::motion
