#include "src/motion/fov.h"

#include <algorithm>
#include <cmath>

namespace cvr::motion {

bool covers(const FovSpec& spec, const Pose& predicted, const Pose& actual) {
  // Location: margin does not help (footnote 1) — the actual location must
  // fall inside the delivered cell window.
  if (predicted.position_distance(actual) > spec.position_tolerance_m) {
    return false;
  }
  // Orientation: delivered span per side is FoV/2 + margin; the actual FoV
  // (FoV/2 per side) is covered iff the view-centre error per axis is at
  // most the margin.
  const double yaw_err = std::abs(angular_difference(predicted.yaw, actual.yaw));
  const double pitch_err = std::abs(predicted.pitch - actual.pitch);
  return yaw_err <= spec.margin_deg && pitch_err <= spec.margin_deg;
}

double delivered_panorama_fraction(const FovSpec& spec) {
  const double h = std::min(360.0, spec.horizontal_deg + 2.0 * spec.margin_deg);
  const double v = std::min(180.0, spec.vertical_deg + 2.0 * spec.margin_deg);
  return (h / 360.0) * (v / 180.0);
}

}  // namespace cvr::motion
