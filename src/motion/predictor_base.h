// Pluggable motion-prediction interface.
//
// Section II: "any existing motion prediction model can be applied to
// this paper to predict each user's 6-degree-of-freedom motion". The
// paper's system uses per-axis linear regression (Section V, following
// Firefly); this interface lets alternatives (Kalman, persistence, ...)
// drop into the same slot of the pipeline. The ablation bench
// `ablation_predictors` compares their induced prediction-success rates.
#pragma once

#include <cstddef>
#include <memory>

#include "src/motion/pose.h"

namespace cvr::motion {

class MotionPredictor {
 public:
  virtual ~MotionPredictor() = default;

  /// Feeds the pose observed at slot `t` (monotone non-decreasing t).
  virtual void observe(std::size_t t, const Pose& pose) = 0;

  /// Predicts the pose `horizon` slots after the last observation.
  /// Must return a sane default before the first observation.
  virtual Pose predict(std::size_t horizon = 1) const = 0;

  /// Number of poses observed so far.
  virtual std::size_t observations() const = 0;
};

/// Factory signature used by configs that want to choose a predictor.
using PredictorFactory = std::unique_ptr<MotionPredictor> (*)();

/// Config-friendly predictor selection.
enum class PredictorKind {
  kLinearRegression,  ///< Section V's per-axis linear regression.
  kKalman,            ///< Constant-velocity Kalman filter.
  kPersistence,       ///< Zero-order hold baseline.
};

/// Instantiates a predictor of the given kind with library defaults.
/// (Defined in predictor_factory.cpp; the window/noise knobs of the
/// concrete types remain available by constructing them directly.)
std::unique_ptr<MotionPredictor> make_predictor(PredictorKind kind);

/// Human-readable name for reports.
const char* predictor_name(PredictorKind kind);

}  // namespace cvr::motion
