// Persistence (zero-order-hold) prediction: "the user will be exactly
// where they were". The weakest sensible baseline for the predictor
// ablation — any model worth running must beat it at horizon >= 1.
#pragma once

#include "src/motion/pose.h"
#include "src/motion/predictor_base.h"

namespace cvr::motion {

class PersistencePredictor final : public MotionPredictor {
 public:
  void observe(std::size_t /*t*/, const Pose& pose) override {
    last_ = pose.normalized();
    ++observations_;
  }

  Pose predict(std::size_t /*horizon*/ = 1) const override { return last_; }

  std::size_t observations() const override { return observations_; }

 private:
  Pose last_{};
  std::size_t observations_ = 0;
};

}  // namespace cvr::motion
