#include "src/motion/kalman_predictor.h"

namespace cvr::motion {

ScalarKalman::ScalarKalman(double process, double measurement)
    : process_(process), measurement_(measurement) {}

void ScalarKalman::propagate(double dt) {
  // x' = x + v dt; v' = v. Covariance: P' = F P F^T + Q with
  // F = [[1, dt], [0, 1]], Q = q * [[dt^3/3, dt^2/2], [dt^2/2, dt]]
  // (discretised white-noise acceleration).
  const double q = process_;
  x_ += v_ * dt;
  const double pxx = pxx_ + 2.0 * dt * pxv_ + dt * dt * pvv_;
  const double pxv = pxv_ + dt * pvv_;
  pxx_ = pxx + q * dt * dt * dt / 3.0;
  pxv_ = pxv + q * dt * dt / 2.0;
  pvv_ = pvv_ + q * dt;
}

void ScalarKalman::update(double dt, double measurement) {
  if (!primed_) {
    x_ = measurement;
    v_ = 0.0;
    pxx_ = measurement_;
    pxv_ = 0.0;
    pvv_ = 1.0;  // velocity unknown
    primed_ = true;
    return;
  }
  propagate(dt);
  const double innovation = measurement - x_;
  const double s = pxx_ + measurement_;
  const double kx = pxx_ / s;
  const double kv = pxv_ / s;
  x_ += kx * innovation;
  v_ += kv * innovation;
  const double pxx = (1.0 - kx) * pxx_;
  const double pxv = (1.0 - kx) * pxv_;
  const double pvv = pvv_ - kv * pxv_;
  pxx_ = pxx;
  pxv_ = pxv;
  pvv_ = pvv;
}

double ScalarKalman::predict(double horizon) const {
  return x_ + v_ * horizon;
}

KalmanMotionPredictor::KalmanMotionPredictor(KalmanConfig config)
    : config_(config),
      axes_{ScalarKalman(config.position_process, config.position_measurement),
            ScalarKalman(config.position_process, config.position_measurement),
            ScalarKalman(config.position_process, config.position_measurement),
            ScalarKalman(config.angle_process, config.angle_measurement),
            ScalarKalman(config.angle_process, config.angle_measurement),
            ScalarKalman(config.angle_process, config.angle_measurement)} {}

void KalmanMotionPredictor::observe(std::size_t t, const Pose& pose) {
  const Pose p = pose.normalized();
  std::array<double, 6> values = p.as_array();
  if (observations_ > 0) {
    values[3] =
        last_raw_[3] + angular_difference(p.yaw, wrap_degrees(last_raw_[3]));
    values[5] =
        last_raw_[5] + angular_difference(p.roll, wrap_degrees(last_raw_[5]));
  }
  const double dt =
      observations_ == 0 ? 1.0 : static_cast<double>(t - last_t_ == 0 ? 1 : t - last_t_);
  last_raw_ = values;
  last_t_ = t;
  for (std::size_t i = 0; i < 6; ++i) axes_[i].update(dt, values[i]);
  ++observations_;
}

Pose KalmanMotionPredictor::predict(std::size_t horizon) const {
  if (observations_ == 0) return Pose{};
  std::array<double, 6> values{};
  for (std::size_t i = 0; i < 6; ++i) {
    values[i] = axes_[i].predict(static_cast<double>(horizon));
  }
  return Pose::from_array(values).normalized();
}

}  // namespace cvr::motion
