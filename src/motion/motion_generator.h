// Synthetic 6-DoF motion traces.
//
// Substitute for the Firefly user study dataset (25 users, two large VR
// scenes) which is not redistributable here — see DESIGN.md Section 3.
// What the scheduler consumes is the *induced prediction-success process*
// 1_n(t); to reproduce its statistics the generated motion must be
// smooth most of the time (so per-axis linear regression predicts well)
// with occasional rapid head turns and direction changes (so prediction
// sometimes fails). We use:
//   * translation: random-waypoint walking on the scene floor with
//     bounded speed and smooth acceleration, matching the paper's 5 cm
//     grid world;
//   * orientation: Ornstein-Uhlenbeck yaw/pitch around a drifting gaze
//     target plus Poisson "saccade" events that slew the gaze quickly.
#pragma once

#include <cstdint>
#include <vector>

#include "src/motion/pose.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace cvr::motion {

/// One pose per time slot.
using MotionTrace = std::vector<Pose>;

struct MotionGeneratorConfig {
  double slot_seconds = cvr::kSlotSeconds;
  // Scene extent (metres); the walkable floor is [0, width] x [0, depth].
  double scene_width_m = 10.0;
  double scene_depth_m = 8.0;
  double eye_height_m = 1.7;
  // Translation dynamics.
  double max_speed_mps = 1.2;      ///< Casual walking speed.
  double accel_mps2 = 0.8;         ///< Smooth speed changes.
  double waypoint_tolerance_m = 0.15;
  // Orientation dynamics (degrees / seconds).
  double yaw_ou_theta = 1.5;       ///< OU mean-reversion rate (1/s).
  double yaw_ou_sigma = 25.0;      ///< OU volatility (deg/sqrt(s)).
  double pitch_ou_theta = 2.0;
  double pitch_ou_sigma = 12.0;
  double pitch_limit_deg = 55.0;   ///< People rarely look straight up/down.
  double saccade_rate_hz = 0.25;   ///< Rapid gaze jump events.
  double saccade_span_deg = 120.0; ///< Max size of a saccade target jump.
  double saccade_slew_dps = 240.0; ///< Angular speed during a saccade.
};

class MotionGenerator {
 public:
  explicit MotionGenerator(MotionGeneratorConfig config = {});

  /// Deterministic: same (seed, user, slots) -> same trace.
  MotionTrace generate(std::uint64_t seed, std::uint64_t user,
                       std::size_t slots) const;

 private:
  MotionGeneratorConfig config_;
};

}  // namespace cvr::motion
