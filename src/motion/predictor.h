// Per-axis linear-regression 6-DoF motion prediction.
//
// Section V: "We use linear regression to predict the virtual position
// and head orientation in each axis independently, which follows the
// methodology in [Firefly]." Angles are unwrapped into a continuous
// signal before regression so a head turn crossing +-180 degrees does not
// corrupt the fit; the prediction is re-wrapped on output.
#pragma once

#include <array>
#include <cstddef>

#include "src/motion/pose.h"
#include "src/motion/predictor_base.h"
#include "src/util/regression.h"

namespace cvr::motion {

struct PredictorConfig {
  std::size_t window = 20;  ///< Sliding-window length (slots of history).
};

class LinearMotionPredictor final : public MotionPredictor {
 public:
  explicit LinearMotionPredictor(PredictorConfig config = {});

  /// Feeds the pose observed at slot `t`.
  void observe(std::size_t t, const Pose& pose) override;

  /// Predicts the pose `horizon` slots after the last observation
  /// (Section V pipelines one slot ahead, so horizon = 1 is typical).
  /// Before any observation, returns a default pose.
  Pose predict(std::size_t horizon = 1) const override;

  bool ready() const;
  std::size_t observations() const override { return observations_; }

 private:
  PredictorConfig config_;
  // x, y, z, unwrapped-yaw, pitch, unwrapped-roll.
  std::array<cvr::SlidingLinearRegressor, 6> axes_;
  std::array<double, 6> last_raw_{};  ///< Last unwrapped values (yaw/roll).
  std::size_t observations_ = 0;
  double last_t_ = 0.0;
};

}  // namespace cvr::motion
