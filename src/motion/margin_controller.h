// Adaptive FoV margin.
//
// Section II handles prediction error by delivering the FoV "with some
// fixed margin". The margin is a bandwidth/robustness knob: wider covers
// more head-motion error (delta up) but grows the delivered tile set.
// This controller closes the loop the paper leaves open: track the
// online prediction-success estimate delta_bar and widen the margin when
// it sags below a target band, narrow it when comfortably above —
// with hysteresis so the tile set does not flap.
#pragma once

namespace cvr::motion {

struct MarginControllerConfig {
  // The band is set high: with quality levels worth ~1 QoE each and the
  // miss penalty scaling with q, the QoE-optimal coverage sits near
  // delta ~ 0.97-0.99 — sacrificing coverage to trim margin bandwidth
  // is a bad trade until delta is nearly perfect.
  double target_low = 0.93;    ///< Below this delta: widen.
  double target_high = 0.985;  ///< Above this delta: narrow.
  double step_deg = 0.5;       ///< Margin change per adjustment.
  double min_margin_deg = 5.0;
  double max_margin_deg = 40.0;
  /// Consecutive out-of-band updates required before acting (hysteresis).
  int patience = 30;
};

class MarginController {
 public:
  explicit MarginController(double initial_margin_deg = 15.0,
                            MarginControllerConfig config = {});

  /// Feeds the current delta estimate; returns the (possibly adjusted)
  /// margin to use for the next slot.
  double update(double delta_estimate);

  double margin_deg() const { return margin_; }

 private:
  MarginControllerConfig config_;
  double margin_;
  int below_streak_ = 0;
  int above_streak_ = 0;
};

}  // namespace cvr::motion
