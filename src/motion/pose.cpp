#include "src/motion/pose.h"

#include <algorithm>
#include <cmath>

namespace cvr::motion {

double wrap_degrees(double angle) {
  angle = std::fmod(angle + 180.0, 360.0);
  if (angle < 0.0) angle += 360.0;
  return angle - 180.0;
}

double angular_difference(double a, double b) {
  double diff = wrap_degrees(a - b);
  // wrap_degrees returns [-180, 180); map -180 to +180 for a symmetric
  // "shortest way around" convention.
  if (diff == -180.0) diff = 180.0;
  return diff;
}

Pose Pose::normalized() const {
  Pose p = *this;
  p.yaw = wrap_degrees(p.yaw);
  p.roll = wrap_degrees(p.roll);
  p.pitch = std::clamp(p.pitch, -90.0, 90.0);
  return p;
}

double Pose::position_distance(const Pose& other) const {
  const double dx = x - other.x;
  const double dy = y - other.y;
  const double dz = z - other.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

double Pose::view_angle_to(const Pose& other) const {
  constexpr double kDeg = M_PI / 180.0;
  // Unit view vectors from yaw (azimuth) and pitch (elevation).
  auto direction = [](double yaw_deg, double pitch_deg) {
    const double yaw_r = yaw_deg * kDeg;
    const double pitch_r = pitch_deg * kDeg;
    return std::array<double, 3>{std::cos(pitch_r) * std::cos(yaw_r),
                                 std::cos(pitch_r) * std::sin(yaw_r),
                                 std::sin(pitch_r)};
  };
  const auto a = direction(yaw, pitch);
  const auto b = direction(other.yaw, other.pitch);
  const double dot =
      std::clamp(a[0] * b[0] + a[1] * b[1] + a[2] * b[2], -1.0, 1.0);
  return std::acos(dot) / kDeg;
}

Pose Pose::from_array(const std::array<double, 6>& a) {
  return Pose{a[0], a[1], a[2], a[3], a[4], a[5]};
}

double interpolate_degrees(double a, double b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  return wrap_degrees(a + angular_difference(b, a) * t);
}

Pose interpolate(const Pose& a, const Pose& b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  Pose out;
  out.x = a.x + (b.x - a.x) * t;
  out.y = a.y + (b.y - a.y) * t;
  out.z = a.z + (b.z - a.z) * t;
  out.yaw = interpolate_degrees(a.yaw, b.yaw, t);
  out.pitch = a.pitch + (b.pitch - a.pitch) * t;
  out.roll = interpolate_degrees(a.roll, b.roll, t);
  return out.normalized();
}

}  // namespace cvr::motion
