#include "src/motion/motion_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cvr::motion {

MotionGenerator::MotionGenerator(MotionGeneratorConfig config)
    : config_(config) {
  if (config_.slot_seconds <= 0.0 || config_.scene_width_m <= 0.0 ||
      config_.scene_depth_m <= 0.0 || config_.max_speed_mps <= 0.0) {
    throw std::invalid_argument("MotionGeneratorConfig: invalid parameters");
  }
}

MotionTrace MotionGenerator::generate(std::uint64_t seed, std::uint64_t user,
                                      std::size_t slots) const {
  SplitMix64 mixer(seed ^ (0x6D6F74696F6E0000ull + user * 0x9E3779B97F4A7C15ull));
  Rng rng(mixer.next());
  const double dt = config_.slot_seconds;

  // --- Translation state: random waypoint with smooth speed. ---
  double px = rng.uniform(0.0, config_.scene_width_m);
  double py = rng.uniform(0.0, config_.scene_depth_m);
  double wx = rng.uniform(0.0, config_.scene_width_m);
  double wy = rng.uniform(0.0, config_.scene_depth_m);
  double speed = 0.0;
  double target_speed = rng.uniform(0.3, config_.max_speed_mps);

  // --- Orientation state. ---
  double yaw = rng.uniform(-180.0, 180.0);
  double pitch = rng.uniform(-10.0, 10.0);
  double gaze_yaw = yaw;    // OU anchor (drifts with walking direction)
  double saccade_target_yaw = yaw;
  bool in_saccade = false;

  MotionTrace trace;
  trace.reserve(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    // Translation: steer toward the waypoint.
    const double to_wx = wx - px;
    const double to_wy = wy - py;
    const double dist = std::hypot(to_wx, to_wy);
    if (dist < config_.waypoint_tolerance_m) {
      wx = rng.uniform(0.0, config_.scene_width_m);
      wy = rng.uniform(0.0, config_.scene_depth_m);
      target_speed = rng.uniform(0.3, config_.max_speed_mps);
    } else {
      // Smooth speed toward the target.
      const double dv = std::clamp(target_speed - speed,
                                   -config_.accel_mps2 * dt,
                                   config_.accel_mps2 * dt);
      speed = std::clamp(speed + dv, 0.0, config_.max_speed_mps);
      const double step = std::min(speed * dt, dist);
      px += step * to_wx / dist;
      py += step * to_wy / dist;
    }
    // Snap to the 5 cm grid world (Section VI) for the recorded pose.
    const double gx = std::round(px / 0.05) * 0.05;
    const double gy = std::round(py / 0.05) * 0.05;

    // Orientation: the gaze anchor slowly follows the walking direction.
    if (dist > 1e-9 && speed > 0.1) {
      const double heading = std::atan2(to_wy, to_wx) * 180.0 / M_PI;
      gaze_yaw += 0.5 * dt * angular_difference(heading, gaze_yaw);
      gaze_yaw = wrap_degrees(gaze_yaw);
    }
    if (!in_saccade && rng.bernoulli(config_.saccade_rate_hz * dt)) {
      in_saccade = true;
      saccade_target_yaw = wrap_degrees(
          yaw + rng.uniform(-config_.saccade_span_deg, config_.saccade_span_deg));
    }
    if (in_saccade) {
      const double remaining = angular_difference(saccade_target_yaw, yaw);
      const double step = config_.saccade_slew_dps * dt;
      if (std::abs(remaining) <= step) {
        yaw = saccade_target_yaw;
        gaze_yaw = yaw;
        in_saccade = false;
      } else {
        yaw = wrap_degrees(yaw + std::copysign(step, remaining));
      }
    } else {
      // OU step: d(yaw) = theta (anchor - yaw) dt + sigma dW.
      yaw += config_.yaw_ou_theta * angular_difference(gaze_yaw, yaw) * dt +
             config_.yaw_ou_sigma * std::sqrt(dt) * rng.normal();
      yaw = wrap_degrees(yaw);
    }
    pitch += -config_.pitch_ou_theta * pitch * dt +
             config_.pitch_ou_sigma * std::sqrt(dt) * rng.normal();
    pitch = std::clamp(pitch, -config_.pitch_limit_deg, config_.pitch_limit_deg);

    Pose pose;
    pose.x = gx;
    pose.y = gy;
    pose.z = config_.eye_height_m;
    pose.yaw = yaw;
    pose.pitch = pitch;
    pose.roll = 0.0;  // Natural head roll is negligible for FoV coverage.
    trace.push_back(pose.normalized());
  }
  return trace;
}

}  // namespace cvr::motion
