#include "src/motion/margin_controller.h"

#include <algorithm>
#include <stdexcept>

namespace cvr::motion {

MarginController::MarginController(double initial_margin_deg,
                                   MarginControllerConfig config)
    : config_(config), margin_(initial_margin_deg) {
  if (config_.target_low >= config_.target_high ||
      config_.target_low <= 0.0 || config_.target_high > 1.0 ||
      config_.step_deg <= 0.0 ||
      config_.min_margin_deg > config_.max_margin_deg ||
      config_.patience < 1) {
    throw std::invalid_argument("MarginControllerConfig: invalid parameters");
  }
  margin_ = std::clamp(margin_, config_.min_margin_deg,
                       config_.max_margin_deg);
}

double MarginController::update(double delta_estimate) {
  if (delta_estimate < config_.target_low) {
    ++below_streak_;
    above_streak_ = 0;
    if (below_streak_ >= config_.patience) {
      margin_ = std::min(margin_ + config_.step_deg, config_.max_margin_deg);
      below_streak_ = 0;
    }
  } else if (delta_estimate > config_.target_high) {
    ++above_streak_;
    below_streak_ = 0;
    if (above_streak_ >= config_.patience) {
      margin_ = std::max(margin_ - config_.step_deg, config_.min_margin_deg);
      above_streak_ = 0;
    }
  } else {
    below_streak_ = 0;
    above_streak_ = 0;
  }
  return margin_;
}

}  // namespace cvr::motion
