#include "src/motion/predictor.h"

namespace cvr::motion {

namespace {
cvr::SlidingLinearRegressor make_axis(const PredictorConfig& config) {
  return cvr::SlidingLinearRegressor(config.window);
}
}  // namespace

LinearMotionPredictor::LinearMotionPredictor(PredictorConfig config)
    : config_(config),
      axes_{make_axis(config), make_axis(config), make_axis(config),
            make_axis(config), make_axis(config), make_axis(config)} {}

void LinearMotionPredictor::observe(std::size_t t, const Pose& pose) {
  const Pose p = pose.normalized();
  std::array<double, 6> values = p.as_array();
  if (observations_ > 0) {
    // Unwrap yaw (index 3) and roll (index 5) against the running signal:
    // advance by the shortest angular difference from the previous sample.
    values[3] = last_raw_[3] + angular_difference(p.yaw, wrap_degrees(last_raw_[3]));
    values[5] = last_raw_[5] + angular_difference(p.roll, wrap_degrees(last_raw_[5]));
  }
  last_raw_ = values;
  last_t_ = static_cast<double>(t);
  for (std::size_t i = 0; i < 6; ++i) axes_[i].add(last_t_, values[i]);
  ++observations_;
}

Pose LinearMotionPredictor::predict(std::size_t horizon) const {
  if (observations_ == 0) return Pose{};
  const double target = last_t_ + static_cast<double>(horizon);
  std::array<double, 6> values{};
  for (std::size_t i = 0; i < 6; ++i) values[i] = axes_[i].predict(target);
  Pose p = Pose::from_array(values);
  return p.normalized();
}

bool LinearMotionPredictor::ready() const { return observations_ >= 2; }

}  // namespace cvr::motion
