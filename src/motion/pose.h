// 6-Degree-of-Freedom pose: 3 DoF virtual location + 3 DoF head
// orientation (Section II). Angles are in degrees; yaw/roll live on the
// circle [-180, 180) and pitch is clamped to [-90, 90].
#pragma once

#include <array>

namespace cvr::motion {

/// Wraps an angle in degrees into [-180, 180).
double wrap_degrees(double angle);

/// Signed shortest angular difference a - b, in (-180, 180].
double angular_difference(double a, double b);

/// Interpolates between two angles along the shortest arc; t in [0, 1]
/// (clamped). interpolate_degrees(a, b, 0) == wrap(a), ... (a, b, 1) ==
/// wrap(b).
double interpolate_degrees(double a, double b, double t);

struct Pose {
  // Virtual location in metres.
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  // Head orientation in degrees.
  double yaw = 0.0;    ///< Heading, wrapped to [-180, 180).
  double pitch = 0.0;  ///< Elevation, clamped to [-90, 90].
  double roll = 0.0;   ///< Wrapped to [-180, 180).

  /// Normalises angles into their canonical ranges.
  Pose normalized() const;

  /// Euclidean distance between the two virtual locations.
  double position_distance(const Pose& other) const;

  /// Great-circle angle (degrees) between the two view directions
  /// (yaw/pitch only; roll does not move the view centre).
  double view_angle_to(const Pose& other) const;

  std::array<double, 6> as_array() const { return {x, y, z, yaw, pitch, roll}; }

  static Pose from_array(const std::array<double, 6>& a);

  friend bool operator==(const Pose&, const Pose&) = default;
};

/// Linear pose interpolation: positions lerp, angles take the shortest
/// arc. Used to upsample pose streams (headset IMU rate vs slot rate)
/// and to evaluate mid-slot ground truth. t is clamped to [0, 1].
Pose interpolate(const Pose& a, const Pose& b, double t);

}  // namespace cvr::motion
