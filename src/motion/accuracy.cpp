#include "src/motion/accuracy.h"

#include <cmath>
#include <stdexcept>

namespace cvr::motion {

AccuracyEstimator::AccuracyEstimator(double prior, double prior_weight)
    : prior_(prior), prior_weight_(prior_weight) {
  if (prior < 0.0 || prior > 1.0 || prior_weight < 0.0) {
    throw std::invalid_argument("AccuracyEstimator: invalid prior");
  }
}

void AccuracyEstimator::record(bool hit) {
  hits_ += hit ? 1.0 : 0.0;
  ++count_;
}

void AccuracyEstimator::restore(double hits, std::size_t count) {
  if (!std::isfinite(hits) || hits < 0.0 ||
      hits > static_cast<double>(count)) {
    throw std::invalid_argument("AccuracyEstimator: invalid restored tallies");
  }
  hits_ = hits;
  count_ = count;
}

double AccuracyEstimator::estimate() const {
  const double n = static_cast<double>(count_);
  return (hits_ + prior_ * prior_weight_) / (n + prior_weight_);
}

EmaAccuracyEstimator::EmaAccuracyEstimator(double alpha, double initial)
    : alpha_(alpha), value_(initial) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("EmaAccuracyEstimator: alpha out of (0,1]");
  }
}

void EmaAccuracyEstimator::record(bool hit) {
  value_ += alpha_ * ((hit ? 1.0 : 0.0) - value_);
}

}  // namespace cvr::motion
