#include <memory>
#include <stdexcept>

#include "src/motion/kalman_predictor.h"
#include "src/motion/persistence_predictor.h"
#include "src/motion/predictor.h"
#include "src/motion/predictor_base.h"

namespace cvr::motion {

std::unique_ptr<MotionPredictor> make_predictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kLinearRegression:
      return std::make_unique<LinearMotionPredictor>();
    case PredictorKind::kKalman:
      return std::make_unique<KalmanMotionPredictor>();
    case PredictorKind::kPersistence:
      return std::make_unique<PersistencePredictor>();
  }
  throw std::invalid_argument("make_predictor: unknown kind");
}

const char* predictor_name(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kLinearRegression:
      return "linear-regression";
    case PredictorKind::kKalman:
      return "kalman-cv";
    case PredictorKind::kPersistence:
      return "persistence";
  }
  return "?";
}

}  // namespace cvr::motion
