// Experiment reporting: turn ArmResults into machine-readable CSV and
// human-readable markdown, so downstream users can regenerate the
// paper's plots (CDF panels of Figs. 2/3, bar charts of Figs. 7/8) with
// their own tooling instead of scraping bench stdout.
#pragma once

#include <string>
#include <vector>

#include "src/sim/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/util/csv.h"

namespace cvr::report {

/// Per-(run x user) outcome rows:
/// algorithm,avg_qoe,avg_quality,avg_level,avg_delay_ms,variance,
/// prediction_accuracy,fps — one row per outcome per arm.
CsvTable outcomes_table(const std::vector<sim::ArmResult>& arms);

/// CDF curve rows for one metric: algorithm,value,cumulative_probability.
/// `metric` is one of "qoe", "quality", "delay_ms", "variance".
/// Throws std::invalid_argument on an unknown metric.
CsvTable cdf_table(const std::vector<sim::ArmResult>& arms,
                   const std::string& metric, std::size_t points = 101);

/// Recovery accounting rows for fault-injection runs (see
/// docs/resilience.md): arm,user_sample,fault_slots,
/// time_to_recover_slots,qoe_dip,frames_dropped_in_fault — one row per
/// outcome per arm. `user_sample` is the outcome's index within the arm
/// (run-major, user-minor, like outcomes_table rows). When any outcome
/// carries fleet accounting (has_fleet_data — a K>1 fleet::FleetSim
/// run), two per-server breakdown columns are appended:
/// ...,home_server,migrations (docs/fleet.md); single-server arms keep
/// the exact historical six-column schema.
CsvTable resilience_table(const std::vector<sim::ArmResult>& arms);

/// True iff any outcome of any arm carries non-zero recovery accounting
/// (i.e. the arms were produced under a non-empty FaultSchedule).
bool has_resilience_data(const std::vector<sim::ArmResult>& arms);

/// True iff any outcome carries fleet accounting (non-zero home_server
/// or migrations — only fleet::FleetSim with K > 1 produces these).
bool has_fleet_data(const std::vector<sim::ArmResult>& arms);

/// Per-run wall-clock rows: arm,run,wall_ms — one row per entry of each
/// arm's ArmResult::run_wall_ms (arms without timings contribute no
/// rows). This is the series behind the ensemble speedup measurements
/// in docs/running_benchmarks.md.
CsvTable timing_table(const std::vector<sim::ArmResult>& arms);

/// Summary (means) as a markdown table, Figs. 7/8 style. Arms carrying
/// run timings get a "mean run wall (ms)" column.
std::string summary_markdown(const std::vector<sim::ArmResult>& arms);

/// Writes both the outcome CSV and the four CDF CSVs under `prefix`
/// (prefix + "_outcomes.csv", prefix + "_cdf_<metric>.csv"), plus
/// prefix + "_timing.csv" when any arm carries run timings and
/// prefix + "_resilience.csv" when any arm carries recovery accounting
/// (fault-free reports keep their exact historical file set). Returns
/// the written paths.
std::vector<std::string> write_report(const std::vector<sim::ArmResult>& arms,
                                      const std::string& prefix);

/// Writes a telemetry PerfReport as flat CSV, one row per (arm, phase):
/// arm,algorithm,slots,wall_ms_total,slots_per_sec,alloc_invocations,
/// alloc_iterations,phase,count,p50_us,p95_us,p99_us,mean_us,total_ms.
/// Arm-level columns repeat on every row of the arm so the file stays a
/// single flat table (CsvTable is numeric-only, hence the bespoke
/// writer). Throws std::runtime_error on I/O failure.
void write_perf_csv(const std::string& path,
                    const telemetry::PerfReport& report);

}  // namespace cvr::report
