#include "src/report/report.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cvr::report {

namespace {

cvr::Cdf metric_cdf(const sim::ArmResult& arm, const std::string& metric) {
  if (metric == "qoe") return arm.qoe_cdf();
  if (metric == "quality") return arm.quality_cdf();
  if (metric == "delay_ms") return arm.delay_ms_cdf();
  if (metric == "variance") return arm.variance_cdf();
  throw std::invalid_argument("report: unknown metric '" + metric + "'");
}

}  // namespace

CsvTable outcomes_table(const std::vector<sim::ArmResult>& arms) {
  CsvTable table;
  table.header = {"arm",        "avg_qoe",  "avg_quality",
                  "avg_level",  "avg_delay_ms", "variance",
                  "prediction_accuracy", "fps"};
  // The arm name is a string; numeric-only CsvTable rows carry an arm
  // index instead, with the mapping in a comment-friendly header order.
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (const auto& o : arms[a].outcomes) {
      table.rows.push_back({static_cast<double>(a), o.avg_qoe, o.avg_quality,
                            o.avg_level, o.avg_delay_ms, o.variance,
                            o.prediction_accuracy, o.fps});
    }
  }
  return table;
}

CsvTable cdf_table(const std::vector<sim::ArmResult>& arms,
                   const std::string& metric, std::size_t points) {
  CsvTable table;
  table.header = {"arm", "value", "cumulative_probability"};
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const cvr::Cdf cdf = metric_cdf(arms[a], metric);
    for (const auto& [value, p] : cdf.curve(points)) {
      table.rows.push_back({static_cast<double>(a), value, p});
    }
  }
  return table;
}

CsvTable resilience_table(const std::vector<sim::ArmResult>& arms) {
  CsvTable table;
  table.header = {"arm", "user_sample", "fault_slots", "time_to_recover_slots",
                  "qoe_dip", "frames_dropped_in_fault"};
  // Fleet runs (K > 1) break the rows down by serving server; a
  // single-server arm (every home_server 0, no migrations) keeps the
  // exact historical schema.
  const bool fleet = has_fleet_data(arms);
  if (fleet) {
    table.header.push_back("home_server");
    table.header.push_back("migrations");
  }
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (std::size_t i = 0; i < arms[a].outcomes.size(); ++i) {
      const auto& o = arms[a].outcomes[i];
      std::vector<double> row = {static_cast<double>(a),
                                 static_cast<double>(i), o.fault_slots,
                                 o.time_to_recover_slots, o.qoe_dip,
                                 o.frames_dropped_in_fault};
      if (fleet) {
        row.push_back(o.home_server);
        row.push_back(o.migrations);
      }
      table.rows.push_back(std::move(row));
    }
  }
  return table;
}

bool has_fleet_data(const std::vector<sim::ArmResult>& arms) {
  for (const auto& arm : arms) {
    for (const auto& o : arm.outcomes) {
      if (o.home_server != 0.0 || o.migrations != 0.0) return true;
    }
  }
  return false;
}

bool has_resilience_data(const std::vector<sim::ArmResult>& arms) {
  for (const auto& arm : arms) {
    for (const auto& o : arm.outcomes) {
      if (o.fault_slots != 0.0 || o.time_to_recover_slots != 0.0 ||
          o.qoe_dip != 0.0 || o.frames_dropped_in_fault != 0.0) {
        return true;
      }
    }
  }
  return false;
}

CsvTable timing_table(const std::vector<sim::ArmResult>& arms) {
  CsvTable table;
  table.header = {"arm", "run", "wall_ms"};
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (std::size_t r = 0; r < arms[a].run_wall_ms.size(); ++r) {
      table.rows.push_back({static_cast<double>(a), static_cast<double>(r),
                            arms[a].run_wall_ms[r]});
    }
  }
  return table;
}

std::string summary_markdown(const std::vector<sim::ArmResult>& arms) {
  bool timed = false;
  for (const auto& arm : arms) timed = timed || !arm.run_wall_ms.empty();
  std::ostringstream out;
  out << "| algorithm | avg QoE | avg quality | avg delay (ms) | variance | "
         "FPS |"
      << (timed ? " mean run wall (ms) |" : "") << "\n";
  out << "|---|---|---|---|---|---|" << (timed ? "---|" : "") << "\n";
  out.precision(4);
  for (const auto& arm : arms) {
    out << "| " << arm.algorithm << " | " << arm.mean_qoe() << " | "
        << arm.mean_quality() << " | " << arm.mean_delay_ms() << " | "
        << arm.mean_variance() << " | " << arm.mean_fps() << " |";
    if (timed) out << " " << arm.mean_wall_ms() << " |";
    out << "\n";
  }
  return out.str();
}

std::vector<std::string> write_report(const std::vector<sim::ArmResult>& arms,
                                      const std::string& prefix) {
  std::vector<std::string> written;
  const std::string outcomes_path = prefix + "_outcomes.csv";
  write_csv_file(outcomes_path, outcomes_table(arms));
  written.push_back(outcomes_path);
  for (const char* metric : {"qoe", "quality", "delay_ms", "variance"}) {
    const std::string path = prefix + "_cdf_" + metric + ".csv";
    write_csv_file(path, cdf_table(arms, metric));
    written.push_back(path);
  }
  const CsvTable timings = timing_table(arms);
  if (!timings.rows.empty()) {
    const std::string path = prefix + "_timing.csv";
    write_csv_file(path, timings);
    written.push_back(path);
  }
  if (has_resilience_data(arms)) {
    const std::string path = prefix + "_resilience.csv";
    write_csv_file(path, resilience_table(arms));
    written.push_back(path);
  }
  return written;
}

void write_perf_csv(const std::string& path,
                    const telemetry::PerfReport& report) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("report: cannot open '" + path +
                             "' for writing");
  }
  file << "arm,algorithm,slots,wall_ms_total,slots_per_sec,"
          "alloc_invocations,alloc_iterations,phase,count,p50_us,p95_us,"
          "p99_us,mean_us,total_ms\n";
  file.precision(6);
  for (std::size_t a = 0; a < report.arms.size(); ++a) {
    const telemetry::ArmPerf& arm = report.arms[a];
    for (const telemetry::PhasePerf& phase : arm.phases) {
      file << a << ',' << arm.algorithm << ',' << arm.slots << ','
           << arm.wall_ms_total << ',' << arm.slots_per_sec << ','
           << arm.alloc_invocations << ',' << arm.alloc_iterations << ','
           << phase.phase << ',' << phase.count << ',' << phase.p50_us << ','
           << phase.p95_us << ',' << phase.p99_us << ',' << phase.mean_us
           << ',' << phase.total_ms << '\n';
    }
  }
  if (!file) {
    throw std::runtime_error("report: write to '" + path + "' failed");
  }
}

}  // namespace cvr::report
