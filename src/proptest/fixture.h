// Counterexample rendering for the property-based testing harness.
//
// FixtureTraits<T>::show() turns a (shrunk) failing instance into a
// literal C++ fixture — code a developer can paste into a regression
// test verbatim, with doubles printed at max_digits10 so the pasted
// instance is bit-identical to the failing one. Domain types get
// hand-written printers in domain.h; everything else falls back to
// operator<< when available, or an opaque placeholder.
#pragma once

#include <array>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace cvr::proptest {

/// Exact decimal rendering of a double: round-trips through parsing.
inline std::string show_double(double value) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10)
      << value;
  return out.str();
}

/// `{a, b, c}` initializer list of exact doubles.
inline std::string show_double_list(const std::vector<double>& values) {
  std::string out = "{";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += show_double(values[i]);
  }
  out += "}";
  return out;
}

/// Array overload (UserSlotContext's fixed-size rate/delay tables).
template <std::size_t N>
inline std::string show_double_list(const std::array<double, N>& values) {
  std::string out = "{";
  for (std::size_t i = 0; i < N; ++i) {
    if (i) out += ", ";
    out += show_double(values[i]);
  }
  out += "}";
  return out;
}

template <typename T>
concept Streamable = requires(std::ostream& os, const T& value) {
  { os << value };
};

template <typename T>
struct FixtureTraits {
  static std::string show(const T& value) {
    if constexpr (Streamable<T>) {
      std::ostringstream out;
      out << std::setprecision(std::numeric_limits<double>::max_digits10)
          << value;
      return out.str();
    } else {
      return "<no fixture printer for this type>";
    }
  }
};

template <>
struct FixtureTraits<std::vector<double>> {
  static std::string show(const std::vector<double>& value) {
    return "std::vector<double> samples = " + show_double_list(value) + ";";
  }
};

}  // namespace cvr::proptest
