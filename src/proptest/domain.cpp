#include "src/proptest/domain.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/content/rate_function.h"
#include "src/content/tile.h"

namespace cvr::proptest {

namespace {

using core::SlotProblem;
using core::UserSlotContext;

double quantize_up(double value, double grid) {
  return std::ceil(value / grid) * grid;
}

/// A user with arbitrary strictly increasing rates and arbitrary
/// non-negative delays — exercises shapes the analytic tables never
/// produce (concave rate curves, non-monotone delays).
UserSlotContext gen_table_user(cvr::Rng& rng) {
  UserSlotContext user;
  user.delta = rng.uniform(0.3, 1.0);
  user.qbar = rng.uniform(0.0, 6.0);
  user.slot = std::floor(rng.uniform(1.0, 500.0));
  double rate = rng.uniform(1.0, 20.0);
  for (int q = 0; q < content::kNumQualityLevels; ++q) {
    const auto i = static_cast<std::size_t>(q);
    user.rate[i] = rate;
    user.delay[i] = rng.uniform(0.0, 30.0);
    rate += rng.uniform(0.5, 15.0);
  }
  // Bandwidth anywhere from "level 1 only" to "all levels affordable".
  user.user_bandwidth = rng.uniform(user.rate[0] * 0.9, rate * 1.2);
  return user;
}

UserSlotContext gen_analytic_user(cvr::Rng& rng) {
  // Draws hoisted into statements: argument evaluation order is
  // unspecified, and instance determinism must not depend on it.
  const content::CrfRateFunction f(14.2, 1.45, rng.lognormal(0.0, 0.25));
  const double bandwidth = rng.uniform(15.0, 120.0);
  const double delta = rng.uniform(0.3, 1.0);
  const double qbar = rng.uniform(0.0, 6.0);
  const double slot = std::floor(rng.uniform(1.0, 500.0));
  return UserSlotContext::from_rate_function(f, bandwidth, delta, qbar, slot);
}

void quantize_user(UserSlotContext& user) {
  constexpr double kGrid = 0.25;
  double floor_rate = 0.0;
  for (double& r : user.rate) {
    r = std::max(quantize_up(r, kGrid), floor_rate + kGrid);
    floor_rate = r;
  }
  user.user_bandwidth = quantize_up(user.user_bandwidth, kGrid);
}

double min_rate_sum(const SlotProblem& problem) {
  double total = 0.0;
  for (const auto& user : problem.users) total += user.rate[0];
  return total;
}

}  // namespace

SlotProblemGenConfig small_exact_config() {
  SlotProblemGenConfig config;
  config.max_users = 6;
  config.quantize_probability = 0.25;
  return config;
}

SlotProblemGenConfig tie_heavy_config() {
  SlotProblemGenConfig config;
  config.max_users = 12;
  config.duplicate_user_probability = 0.5;
  config.quantize_probability = 0.6;
  config.loss_aware_probability = 0.2;
  config.min_tightness = 0.8;
  return config;
}

SlotProblemGenConfig published_model_config() {
  SlotProblemGenConfig config;
  config.analytic_tables_only = true;
  return config;
}

SlotProblemGenConfig extreme_rates_config() {
  SlotProblemGenConfig config;
  config.min_users = 1;
  config.max_users = 21;  // covers every N mod 4 remainder-lane case
  config.duplicate_user_probability = 0.25;
  config.quantize_probability = 0.25;
  config.loss_aware_probability = 0.2;
  config.extreme_rate_probability = 0.35;
  return config;
}

core::SlotProblem gen_slot_problem(cvr::Rng& rng,
                                   const SlotProblemGenConfig& config) {
  SlotProblem problem;
  problem.params.alpha =
      std::vector<double>{0.0, 0.02, 0.1, 0.5}[static_cast<std::size_t>(
          rng.uniform_int(0, 3))];
  problem.params.beta =
      std::vector<double>{0.0, 0.5, 2.0, 5.0}[static_cast<std::size_t>(
          rng.uniform_int(0, 3))];

  const auto users = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.min_users),
                      static_cast<std::int64_t>(config.max_users)));
  const bool quantize = rng.bernoulli(config.quantize_probability);
  for (std::size_t n = 0; n < users; ++n) {
    if (n > 0 && rng.bernoulli(config.duplicate_user_probability)) {
      // Byte-identical copy: exact score ties at every level.
      problem.users.push_back(problem.users[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]);
      continue;
    }
    UserSlotContext user = config.analytic_tables_only || rng.bernoulli(0.5)
                               ? gen_analytic_user(rng)
                               : gen_table_user(rng);
    if (quantize) quantize_user(user);
    // Guarded so configs without the knob consume NO extra draws —
    // existing corpus seeds must replay byte-identical instances.
    if (config.extreme_rate_probability > 0.0 &&
        rng.bernoulli(config.extreme_rate_probability)) {
      // Power-of-two rescales are exact while the result stays normal,
      // so the rate ordering survives; the density division then runs
      // at ~2^±1000 and (half the time) the delays go denormal — the
      // SIMD≡scalar properties must hold bit-for-bit even here.
      const double scale = rng.bernoulli(0.5) ? 0x1p-1000 : 0x1p+600;
      for (double& r : user.rate) r *= scale;
      user.user_bandwidth *= scale;
      if (rng.bernoulli(0.5)) {
        for (double& d : user.delay) d *= 0x1p-1060;  // denormal range
      }
    }
    if (rng.bernoulli(config.loss_aware_probability)) {
      user.frame_loss.resize(content::kNumQualityLevels);
      for (double& loss : user.frame_loss) loss = rng.uniform(0.0, 0.7);
    }
    problem.users.push_back(std::move(user));
  }

  if (quantize && rng.bernoulli(0.3) && !problem.users.empty()) {
    // Boundary instance: the budget is EXACTLY the rate of a random
    // allocation, so feasibility decisions sit on the epsilon edge.
    double exact = 0.0;
    for (const auto& user : problem.users) {
      exact += user.rate[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    }
    problem.server_bandwidth = exact;
  } else {
    problem.server_bandwidth =
        min_rate_sum(problem) *
        rng.uniform(config.min_tightness, config.max_tightness);
  }
  return problem;
}

Gen<core::SlotProblem> slot_problems(SlotProblemGenConfig config) {
  return [config](cvr::Rng& rng) { return gen_slot_problem(rng, config); };
}

std::vector<core::SlotProblem> ShrinkTraits<core::SlotProblem>::candidates(
    const core::SlotProblem& problem) {
  std::vector<SlotProblem> out;
  const std::size_t n_users = problem.users.size();

  // Drop each user.
  for (std::size_t i = 0; i < n_users; ++i) {
    SlotProblem smaller = problem;
    smaller.users.erase(smaller.users.begin() +
                        static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(smaller));
  }

  // Simplify each user's history state (delta/qbar/slot/frame_loss).
  for (std::size_t i = 0; i < n_users; ++i) {
    const UserSlotContext& user = problem.users[i];
    if (user.delta != 1.0 || user.qbar != 0.0 || user.slot != 1.0 ||
        !user.frame_loss.empty()) {
      SlotProblem simpler = problem;
      simpler.users[i].delta = 1.0;
      simpler.users[i].qbar = 0.0;
      simpler.users[i].slot = 1.0;
      simpler.users[i].frame_loss.clear();
      out.push_back(std::move(simpler));
    }
  }

  // Lower each user's level ceiling to the mandatory minimum.
  for (std::size_t i = 0; i < n_users; ++i) {
    if (problem.users[i].user_bandwidth > problem.users[i].rate[0]) {
      SlotProblem capped = problem;
      capped.users[i].user_bandwidth = capped.users[i].rate[0];
      out.push_back(std::move(capped));
    }
  }

  // Halve the budget headroom; then remove it entirely.
  const double minimum = min_rate_sum(problem);
  const double headroom = problem.server_bandwidth - minimum;
  if (headroom > 1e-6) {
    SlotProblem halved = problem;
    halved.server_bandwidth = minimum + headroom / 2.0;
    out.push_back(std::move(halved));
    SlotProblem tight = problem;
    tight.server_bandwidth = minimum;
    out.push_back(std::move(tight));
  }

  // Neutralize the QoE weights.
  if (problem.params.alpha != 0.0 || problem.params.beta != 0.0) {
    SlotProblem plain = problem;
    plain.params = core::QoeParams{0.0, 0.0};
    out.push_back(std::move(plain));
  }
  return out;
}

std::string FixtureTraits<core::SlotProblem>::show(
    const core::SlotProblem& problem) {
  std::string out;
  out += "core::SlotProblem problem;\n";
  out += "problem.params = core::QoeParams{" +
         show_double(problem.params.alpha) + ", " +
         show_double(problem.params.beta) + "};\n";
  out += "problem.server_bandwidth = " +
         show_double(problem.server_bandwidth) + ";\n";
  for (const auto& user : problem.users) {
    out += "{\n  core::UserSlotContext user;\n";
    out += "  user.delta = " + show_double(user.delta) + ";\n";
    out += "  user.qbar = " + show_double(user.qbar) + ";\n";
    out += "  user.slot = " + show_double(user.slot) + ";\n";
    out += "  user.user_bandwidth = " + show_double(user.user_bandwidth) +
           ";\n";
    out += "  user.rate = " + show_double_list(user.rate) + ";\n";
    out += "  user.delay = " + show_double_list(user.delay) + ";\n";
    if (!user.frame_loss.empty()) {
      out += "  user.frame_loss = " + show_double_list(user.frame_loss) +
             ";\n";
    }
    out += "  problem.users.push_back(user);\n}\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fault schedules

Gen<faults::FaultScheduleConfig> fault_schedule_configs() {
  return [](cvr::Rng& rng) {
    faults::FaultScheduleConfig config;
    config.users = static_cast<std::size_t>(rng.uniform_int(1, 16));
    config.routers = static_cast<std::size_t>(rng.uniform_int(1, 4));
    config.slots = static_cast<std::size_t>(rng.uniform_int(50, 3000));
    config.seed = rng.engine()();
    config.intensity = rng.bernoulli(0.15) ? 0.0 : rng.uniform(0.0, 3.0);
    config.churn_rate = rng.uniform(0.0, 1.5);
    config.pose_blackout_rate = rng.uniform(0.0, 1.5);
    config.ack_stall_rate = rng.uniform(0.0, 1.5);
    config.router_outage_rate = rng.uniform(0.0, 1.5);
    config.cache_flush_rate = rng.uniform(0.0, 1.0);
    config.mean_duration_slots =
        static_cast<std::size_t>(rng.uniform_int(1, 80));
    config.outage_depth = rng.uniform(0.0, 0.95);
    // Fleet scope: keep a healthy share of server-free configs so the
    // legacy (servers == 0) generator path stays under test too.
    config.servers = rng.bernoulli(0.35)
                         ? 0
                         : static_cast<std::size_t>(rng.uniform_int(1, 6));
    config.server_crash_rate = rng.uniform(0.0, 1.5);
    config.fleet_partition_rate = rng.uniform(0.0, 1.5);
    return config;
  };
}

std::vector<faults::FaultScheduleConfig>
ShrinkTraits<faults::FaultScheduleConfig>::candidates(
    const faults::FaultScheduleConfig& config) {
  std::vector<faults::FaultScheduleConfig> out;
  const auto push_if = [&](bool changed, faults::FaultScheduleConfig next) {
    if (changed) out.push_back(next);
  };
  auto c = config;
  c.users = std::max<std::size_t>(1, config.users / 2);
  push_if(c.users != config.users, c);
  c = config;
  c.routers = 1;
  push_if(config.routers != 1, c);
  c = config;
  c.slots = std::max<std::size_t>(1, config.slots / 2);
  push_if(c.slots != config.slots, c);
  c = config;
  c.intensity = 0.0;
  push_if(config.intensity != 0.0, c);
  c = config;
  c.intensity = config.intensity / 2.0;
  push_if(config.intensity > 1e-3, c);
  c = config;
  c.mean_duration_slots = 1;
  push_if(config.mean_duration_slots != 1, c);
  c = config;
  c.servers = 0;
  push_if(config.servers != 0, c);
  for (auto rate : {&faults::FaultScheduleConfig::churn_rate,
                    &faults::FaultScheduleConfig::pose_blackout_rate,
                    &faults::FaultScheduleConfig::ack_stall_rate,
                    &faults::FaultScheduleConfig::router_outage_rate,
                    &faults::FaultScheduleConfig::cache_flush_rate,
                    &faults::FaultScheduleConfig::server_crash_rate,
                    &faults::FaultScheduleConfig::fleet_partition_rate}) {
    c = config;
    c.*rate = 0.0;
    push_if(config.*rate != 0.0, c);
  }
  return out;
}

std::string FixtureTraits<faults::FaultScheduleConfig>::show(
    const faults::FaultScheduleConfig& config) {
  std::string out = "faults::FaultScheduleConfig config;\n";
  out += "config.users = " + std::to_string(config.users) + ";\n";
  out += "config.routers = " + std::to_string(config.routers) + ";\n";
  out += "config.slots = " + std::to_string(config.slots) + ";\n";
  out += "config.seed = " + std::to_string(config.seed) + "ull;\n";
  out += "config.intensity = " + show_double(config.intensity) + ";\n";
  out += "config.churn_rate = " + show_double(config.churn_rate) + ";\n";
  out += "config.pose_blackout_rate = " +
         show_double(config.pose_blackout_rate) + ";\n";
  out += "config.ack_stall_rate = " + show_double(config.ack_stall_rate) +
         ";\n";
  out += "config.router_outage_rate = " +
         show_double(config.router_outage_rate) + ";\n";
  out += "config.cache_flush_rate = " + show_double(config.cache_flush_rate) +
         ";\n";
  out += "config.mean_duration_slots = " +
         std::to_string(config.mean_duration_slots) + ";\n";
  out += "config.outage_depth = " + show_double(config.outage_depth) + ";\n";
  out += "config.servers = " + std::to_string(config.servers) + ";\n";
  out += "config.server_crash_rate = " +
         show_double(config.server_crash_rate) + ";\n";
  out += "config.fleet_partition_rate = " +
         show_double(config.fleet_partition_rate) + ";\n";
  return out;
}

// ---------------------------------------------------------------------------
// Wire messages

namespace {

content::VideoId gen_video_id(cvr::Rng& rng) {
  content::TileKey key;
  key.cell.gx = static_cast<std::int32_t>(rng.uniform_int(-(1 << 22),
                                                          (1 << 22)));
  key.cell.gy = static_cast<std::int32_t>(rng.uniform_int(-(1 << 22),
                                                          (1 << 22)));
  key.tile_index = static_cast<int>(rng.uniform_int(0, 3));
  key.level = static_cast<content::QualityLevel>(rng.uniform_int(1, 6));
  return content::pack_video_id(key);
}

double gen_coordinate(cvr::Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return 0.0;
    case 1:
      return rng.uniform(-180.0, 180.0);
    case 2:
      return rng.uniform(-1e6, 1e6);
    default:
      return rng.normal(0.0, 1e-6);  // subnormal-adjacent magnitudes
  }
}

std::vector<content::VideoId> gen_tiles(cvr::Rng& rng) {
  std::vector<content::VideoId> tiles;
  const auto count = static_cast<std::size_t>(rng.uniform_int(0, 20));
  tiles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) tiles.push_back(gen_video_id(rng));
  return tiles;
}

/// A valid UserHandoff: every cross-field invariant of the codec holds
/// by construction (tallies bounded by counts, qbar under the level
/// ceiling, no phantom pose), so encode never throws and the round-trip
/// property exercises the full field surface.
proto::UserHandoff gen_user_handoff(cvr::Rng& rng) {
  proto::UserHandoff message;
  message.user = static_cast<std::uint32_t>(rng.engine()());
  message.slot = rng.engine()();
  message.delta_count = static_cast<std::uint64_t>(rng.uniform_int(0, 2000));
  message.delta_hits =
      rng.uniform(0.0, static_cast<double>(message.delta_count));
  // Loss-aware runs carry a second tally; half the instances leave it
  // at the loss-oblivious zero state.
  if (rng.bernoulli(0.5)) {
    message.base_count = static_cast<std::uint64_t>(rng.uniform_int(0, 2000));
    message.base_hits =
        rng.uniform(0.0, static_cast<double>(message.base_count));
  }
  message.qbar_slots = static_cast<std::uint64_t>(rng.uniform_int(0, 3000));
  if (message.qbar_slots > 0) {
    message.qbar_sum =
        rng.uniform(0.0, static_cast<double>(message.qbar_slots) *
                             static_cast<double>(content::kNumQualityLevels));
  }
  message.bandwidth_mbps = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.0, 500.0);
  message.bandwidth_observations =
      static_cast<std::uint64_t>(rng.uniform_int(0, 5000));
  message.has_pose = rng.bernoulli(0.7);
  if (message.has_pose) {
    message.pose.x = gen_coordinate(rng);
    message.pose.y = gen_coordinate(rng);
    message.pose.z = gen_coordinate(rng);
    message.pose.yaw = gen_coordinate(rng);
    message.pose.pitch = gen_coordinate(rng);
    message.pose.roll = gen_coordinate(rng);
    message.pose_slot = rng.engine()();
  }
  message.safe_mode = rng.bernoulli(0.2);
  message.pose_stale = rng.bernoulli(0.2);
  message.transmit_fraction = rng.uniform(0.0, 1.0);
  return message;
}

}  // namespace

WireMessage gen_wire_message(cvr::Rng& rng) {
  switch (rng.uniform_int(0, 7)) {
    case 0: {
      proto::PoseUpdate message;
      message.user = static_cast<std::uint32_t>(rng.engine()());
      message.slot = rng.engine()();
      message.pose.x = gen_coordinate(rng);
      message.pose.y = gen_coordinate(rng);
      message.pose.z = gen_coordinate(rng);
      message.pose.yaw = gen_coordinate(rng);
      message.pose.pitch = gen_coordinate(rng);
      message.pose.roll = gen_coordinate(rng);
      return message;
    }
    case 1: {
      proto::DeliveryAck message;
      message.user = static_cast<std::uint32_t>(rng.engine()());
      message.slot = rng.engine()();
      message.tiles = gen_tiles(rng);
      return message;
    }
    case 2: {
      proto::ReleaseAck message;
      message.user = static_cast<std::uint32_t>(rng.engine()());
      message.slot = rng.engine()();
      message.tiles = gen_tiles(rng);
      return message;
    }
    case 3: {
      proto::TileHeader message;
      message.video_id = gen_video_id(rng);
      message.packet_count =
          static_cast<std::uint32_t>(rng.uniform_int(1, 64));
      message.packet_index = static_cast<std::uint32_t>(
          rng.uniform_int(0, message.packet_count - 1));
      message.slot = rng.engine()();
      return message;
    }
    case 4: {
      proto::ConnectRequest message;
      message.session = rng.engine()();
      message.slot = rng.engine()();
      message.qos_ms = rng.uniform(1e-3, 1e3);  // finite, positive
      return message;
    }
    case 5: {
      proto::AdmitResponse message;
      message.session = rng.engine()();
      message.slot = rng.engine()();
      const auto decision = static_cast<proto::WireAdmission>(
          rng.uniform_int(0, 2));
      message.decision = decision;
      // Decision/cap consistency is a wire invariant: reject grants no
      // levels, admit/degrade grants at least one.
      message.level_cap =
          decision == proto::WireAdmission::kReject
              ? 0
              : static_cast<std::uint8_t>(
                    rng.uniform_int(1, content::kNumQualityLevels));
      return message;
    }
    case 6: {
      proto::DisconnectNotice message;
      message.session = rng.engine()();
      message.slot = rng.engine()();
      return message;
    }
    default:
      return gen_user_handoff(rng);
  }
}

Gen<WireMessage> wire_messages() {
  return [](cvr::Rng& rng) { return gen_wire_message(rng); };
}

proto::Buffer encode_wire_message(const WireMessage& message) {
  return std::visit([](const auto& m) { return proto::encode(m); }, message);
}

std::vector<WireMessage> ShrinkTraits<WireMessage>::candidates(
    const WireMessage& message) {
  std::vector<WireMessage> out;
  if (const auto* pose = std::get_if<proto::PoseUpdate>(&message)) {
    if (!(*pose == proto::PoseUpdate{})) out.push_back(proto::PoseUpdate{});
  } else if (const auto* ack = std::get_if<proto::DeliveryAck>(&message)) {
    for (auto tiles :
         ShrinkTraits<std::vector<content::VideoId>>::candidates(ack->tiles)) {
      proto::DeliveryAck smaller = *ack;
      smaller.tiles = std::move(tiles);
      out.push_back(std::move(smaller));
    }
    if (ack->user != 0 || ack->slot != 0) {
      proto::DeliveryAck zeroed = *ack;
      zeroed.user = 0;
      zeroed.slot = 0;
      out.push_back(std::move(zeroed));
    }
  } else if (const auto* release = std::get_if<proto::ReleaseAck>(&message)) {
    for (auto tiles : ShrinkTraits<std::vector<content::VideoId>>::candidates(
             release->tiles)) {
      proto::ReleaseAck smaller = *release;
      smaller.tiles = std::move(tiles);
      out.push_back(std::move(smaller));
    }
    if (release->user != 0 || release->slot != 0) {
      proto::ReleaseAck zeroed = *release;
      zeroed.user = 0;
      zeroed.slot = 0;
      out.push_back(std::move(zeroed));
    }
  } else if (const auto* header = std::get_if<proto::TileHeader>(&message)) {
    if (header->packet_count != 1 || header->packet_index != 0 ||
        header->slot != 0) {
      proto::TileHeader minimal = *header;
      minimal.packet_count = 1;
      minimal.packet_index = 0;
      minimal.slot = 0;
      out.push_back(std::move(minimal));
    }
  } else if (const auto* connect =
                 std::get_if<proto::ConnectRequest>(&message)) {
    proto::ConnectRequest minimal;  // qos_ms must stay positive
    minimal.qos_ms = 1.0;
    if (!(*connect == minimal)) out.push_back(std::move(minimal));
  } else if (const auto* admit = std::get_if<proto::AdmitResponse>(&message)) {
    proto::AdmitResponse minimal;  // reject with level_cap 0 is valid
    if (!(*admit == minimal)) out.push_back(std::move(minimal));
  } else if (const auto* bye = std::get_if<proto::DisconnectNotice>(&message)) {
    if (!(*bye == proto::DisconnectNotice{})) {
      out.push_back(proto::DisconnectNotice{});
    }
  } else if (const auto* handoff = std::get_if<proto::UserHandoff>(&message)) {
    if (handoff->has_pose) {
      proto::UserHandoff poseless = *handoff;  // drop the pose block whole
      poseless.pose = motion::Pose{};
      poseless.pose_slot = 0;
      poseless.has_pose = false;
      poseless.pose_stale = false;
      out.push_back(std::move(poseless));
    }
    if (handoff->delta_count != 0 || handoff->base_count != 0 ||
        handoff->qbar_slots != 0) {
      proto::UserHandoff cold = *handoff;  // wipe the carried tallies
      cold.delta_hits = 0.0;
      cold.delta_count = 0;
      cold.base_hits = 0.0;
      cold.base_count = 0;
      cold.qbar_sum = 0.0;
      cold.qbar_slots = 0;
      out.push_back(std::move(cold));
    }
    if (!(*handoff == proto::UserHandoff{})) {
      out.push_back(proto::UserHandoff{});
    }
  }
  return out;
}

namespace {

std::string show_tiles(const std::vector<content::VideoId>& tiles) {
  std::string out = "{";
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(tiles[i]) + "ull";
  }
  return out + "}";
}

}  // namespace

std::string FixtureTraits<WireMessage>::show(const WireMessage& message) {
  std::string out;
  if (const auto* pose = std::get_if<proto::PoseUpdate>(&message)) {
    out += "proto::PoseUpdate message;\n";
    out += "message.user = " + std::to_string(pose->user) + ";\n";
    out += "message.slot = " + std::to_string(pose->slot) + "ull;\n";
    out += "message.pose.x = " + show_double(pose->pose.x) + ";\n";
    out += "message.pose.y = " + show_double(pose->pose.y) + ";\n";
    out += "message.pose.z = " + show_double(pose->pose.z) + ";\n";
    out += "message.pose.yaw = " + show_double(pose->pose.yaw) + ";\n";
    out += "message.pose.pitch = " + show_double(pose->pose.pitch) + ";\n";
    out += "message.pose.roll = " + show_double(pose->pose.roll) + ";\n";
  } else if (const auto* ack = std::get_if<proto::DeliveryAck>(&message)) {
    out += "proto::DeliveryAck message;\n";
    out += "message.user = " + std::to_string(ack->user) + ";\n";
    out += "message.slot = " + std::to_string(ack->slot) + "ull;\n";
    out += "message.tiles = " + show_tiles(ack->tiles) + ";\n";
  } else if (const auto* release = std::get_if<proto::ReleaseAck>(&message)) {
    out += "proto::ReleaseAck message;\n";
    out += "message.user = " + std::to_string(release->user) + ";\n";
    out += "message.slot = " + std::to_string(release->slot) + "ull;\n";
    out += "message.tiles = " + show_tiles(release->tiles) + ";\n";
  } else if (const auto* header = std::get_if<proto::TileHeader>(&message)) {
    out += "proto::TileHeader message;\n";
    out += "message.video_id = " + std::to_string(header->video_id) +
           "ull;\n";
    out += "message.packet_index = " + std::to_string(header->packet_index) +
           ";\n";
    out += "message.packet_count = " + std::to_string(header->packet_count) +
           ";\n";
    out += "message.slot = " + std::to_string(header->slot) + "ull;\n";
  } else if (const auto* connect =
                 std::get_if<proto::ConnectRequest>(&message)) {
    out += "proto::ConnectRequest message;\n";
    out += "message.session = " + std::to_string(connect->session) + "ull;\n";
    out += "message.slot = " + std::to_string(connect->slot) + "ull;\n";
    out += "message.qos_ms = " + show_double(connect->qos_ms) + ";\n";
  } else if (const auto* admit = std::get_if<proto::AdmitResponse>(&message)) {
    out += "proto::AdmitResponse message;\n";
    out += "message.session = " + std::to_string(admit->session) + "ull;\n";
    out += "message.slot = " + std::to_string(admit->slot) + "ull;\n";
    out += "message.decision = static_cast<proto::WireAdmission>(" +
           std::to_string(static_cast<int>(admit->decision)) + ");\n";
    out += "message.level_cap = " +
           std::to_string(static_cast<int>(admit->level_cap)) + ";\n";
  } else if (const auto* bye =
                 std::get_if<proto::DisconnectNotice>(&message)) {
    out += "proto::DisconnectNotice message;\n";
    out += "message.session = " + std::to_string(bye->session) + "ull;\n";
    out += "message.slot = " + std::to_string(bye->slot) + "ull;\n";
  } else if (const auto* handoff = std::get_if<proto::UserHandoff>(&message)) {
    out += "proto::UserHandoff message;\n";
    out += "message.user = " + std::to_string(handoff->user) + ";\n";
    out += "message.slot = " + std::to_string(handoff->slot) + "ull;\n";
    out += "message.delta_hits = " + show_double(handoff->delta_hits) + ";\n";
    out += "message.delta_count = " + std::to_string(handoff->delta_count) +
           "ull;\n";
    out += "message.base_hits = " + show_double(handoff->base_hits) + ";\n";
    out += "message.base_count = " + std::to_string(handoff->base_count) +
           "ull;\n";
    out += "message.qbar_sum = " + show_double(handoff->qbar_sum) + ";\n";
    out += "message.qbar_slots = " + std::to_string(handoff->qbar_slots) +
           "ull;\n";
    out += "message.bandwidth_mbps = " + show_double(handoff->bandwidth_mbps) +
           ";\n";
    out += "message.bandwidth_observations = " +
           std::to_string(handoff->bandwidth_observations) + "ull;\n";
    out += "message.pose.x = " + show_double(handoff->pose.x) + ";\n";
    out += "message.pose.y = " + show_double(handoff->pose.y) + ";\n";
    out += "message.pose.z = " + show_double(handoff->pose.z) + ";\n";
    out += "message.pose.yaw = " + show_double(handoff->pose.yaw) + ";\n";
    out += "message.pose.pitch = " + show_double(handoff->pose.pitch) + ";\n";
    out += "message.pose.roll = " + show_double(handoff->pose.roll) + ";\n";
    out += "message.pose_slot = " + std::to_string(handoff->pose_slot) +
           "ull;\n";
    out += std::string("message.has_pose = ") +
           (handoff->has_pose ? "true" : "false") + ";\n";
    out += std::string("message.safe_mode = ") +
           (handoff->safe_mode ? "true" : "false") + ";\n";
    out += std::string("message.pose_stale = ") +
           (handoff->pose_stale ? "true" : "false") + ";\n";
    out += "message.transmit_fraction = " +
           show_double(handoff->transmit_fraction) + ";\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Malformed-bytes corpus

proto::Buffer MutationCase::mutated() const {
  proto::Buffer frame = encode_wire_message(message);
  switch (op) {
    case Op::kOverwriteByte:
      if (!frame.empty()) frame[position % frame.size()] = value;
      break;
    case Op::kTruncate:
      frame.resize(position % std::max<std::size_t>(1, frame.size()));
      break;
    case Op::kAppend:
      frame.push_back(value);
      break;
  }
  return frame;
}

bool MutationCase::is_noop() const {
  return mutated() == encode_wire_message(message);
}

MutationCase gen_mutation_case(cvr::Rng& rng) {
  MutationCase mutation;
  mutation.message = gen_wire_message(rng);
  const proto::Buffer frame = encode_wire_message(mutation.message);
  const double roll = rng.uniform();
  if (roll < 0.6) {
    mutation.op = MutationCase::Op::kOverwriteByte;
    mutation.position = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
    mutation.value = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  } else if (roll < 0.85) {
    mutation.op = MutationCase::Op::kTruncate;
    mutation.position = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
  } else {
    mutation.op = MutationCase::Op::kAppend;
    mutation.value = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return mutation;
}

Gen<MutationCase> mutation_cases() {
  return [](cvr::Rng& rng) { return gen_mutation_case(rng); };
}

std::vector<MutationCase> ShrinkTraits<MutationCase>::candidates(
    const MutationCase& mutation) {
  std::vector<MutationCase> out;
  for (auto& message : ShrinkTraits<WireMessage>::candidates(mutation.message)) {
    MutationCase smaller = mutation;
    smaller.message = std::move(message);
    out.push_back(std::move(smaller));
  }
  if (mutation.position != 0) {
    MutationCase front = mutation;
    front.position = 0;
    out.push_back(std::move(front));
  }
  if (mutation.value != 0) {
    MutationCase zero = mutation;
    zero.value = 0;
    out.push_back(std::move(zero));
  }
  return out;
}

std::string FixtureTraits<MutationCase>::show(const MutationCase& mutation) {
  std::string out = FixtureTraits<WireMessage>::show(mutation.message);
  out += "// mutation: ";
  switch (mutation.op) {
    case MutationCase::Op::kOverwriteByte:
      out += "overwrite frame[" + std::to_string(mutation.position) +
             "] = " + std::to_string(mutation.value);
      break;
    case MutationCase::Op::kTruncate:
      out += "truncate frame to " + std::to_string(mutation.position) +
             " byte(s)";
      break;
    case MutationCase::Op::kAppend:
      out += "append byte " + std::to_string(mutation.value);
      break;
  }
  out += "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Sample streams / QoE traces

Gen<SampleStream> sample_streams(std::size_t max_len) {
  return [max_len](cvr::Rng& rng) {
    SampleStream stream;
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
    stream.samples.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      if (!stream.samples.empty() && rng.bernoulli(0.15)) {
        // Exact repeats: zero-variance runs and catastrophic
        // cancellation bait for naive two-pass formulas.
        stream.samples.push_back(stream.samples.back());
        continue;
      }
      const double magnitude = std::pow(10.0, rng.uniform(-6.0, 9.0));
      const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
      stream.samples.push_back(sign * magnitude * rng.uniform(1.0, 10.0));
    }
    stream.split = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(len)));
    return stream;
  };
}

std::vector<SampleStream> ShrinkTraits<SampleStream>::candidates(
    const SampleStream& stream) {
  std::vector<SampleStream> out;
  for (auto& samples :
       ShrinkTraits<std::vector<double>>::candidates(stream.samples)) {
    SampleStream smaller;
    smaller.split = std::min(stream.split, samples.size());
    smaller.samples = std::move(samples);
    out.push_back(std::move(smaller));
  }
  const std::size_t to_zero = std::min<std::size_t>(stream.samples.size(), 16);
  for (std::size_t i = 0; i < to_zero; ++i) {
    if (stream.samples[i] == 0.0) continue;
    SampleStream zeroed = stream;
    zeroed.samples[i] = 0.0;
    out.push_back(std::move(zeroed));
  }
  return out;
}

std::string FixtureTraits<SampleStream>::show(const SampleStream& stream) {
  return "std::vector<double> samples = " + show_double_list(stream.samples) +
         ";\nstd::size_t split = " + std::to_string(stream.split) + ";\n";
}

Gen<QoeTrace> qoe_traces(std::size_t max_len) {
  return [max_len](cvr::Rng& rng) {
    QoeTrace trace;
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
    trace.steps.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      QoeTrace::Step step;
      step.chosen = static_cast<int>(rng.uniform_int(1, 6));
      if (rng.bernoulli(0.3)) {
        step.displayed = 0.0;  // prediction miss
      } else if (rng.bernoulli(0.2)) {
        step.displayed = rng.uniform(0.0, 6.0);  // fallback-cell quality
      } else {
        step.displayed = static_cast<double>(step.chosen);
      }
      step.delay = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.0, 50.0);
      trace.steps.push_back(step);
    }
    return trace;
  };
}

std::vector<QoeTrace> ShrinkTraits<QoeTrace>::candidates(
    const QoeTrace& trace) {
  std::vector<QoeTrace> out;
  for (auto& steps :
       ShrinkTraits<std::vector<QoeTrace::Step>>::candidates(trace.steps)) {
    QoeTrace smaller;
    smaller.steps = std::move(steps);
    out.push_back(std::move(smaller));
  }
  const std::size_t to_simplify = std::min<std::size_t>(trace.steps.size(), 16);
  for (std::size_t i = 0; i < to_simplify; ++i) {
    const QoeTrace::Step& step = trace.steps[i];
    if (step.chosen == 1 && step.displayed == 0.0 && step.delay == 0.0) {
      continue;
    }
    QoeTrace simpler = trace;
    simpler.steps[i] = QoeTrace::Step{};
    out.push_back(std::move(simpler));
  }
  return out;
}

std::string FixtureTraits<QoeTrace>::show(const QoeTrace& trace) {
  std::string out = "core::UserQoeAccumulator acc;\n";
  for (const auto& step : trace.steps) {
    out += "acc.record_displayed(" + std::to_string(step.chosen) + ", " +
           show_double(step.displayed) + ", " + show_double(step.delay) +
           ");\n";
  }
  return out;
}

}  // namespace cvr::proptest
