// Minimizing shrinker for the property-based testing harness.
//
// When a property fails, the raw random instance is usually too big to
// read (eight users, six levels, lognormal bandwidths). ShrinkTraits<T>
// proposes strictly "smaller" candidate instances — drop a user, lower
// a level ceiling, halve a bandwidth — and shrink_to_minimal() descends
// greedily: whenever a candidate still fails the property it becomes
// the new instance and shrinking restarts from it. The result is a
// local minimum: no single proposed reduction still fails, which in
// practice is a one-or-two-user counterexample a human can eyeball.
//
// Termination: every candidate must be strictly simpler under the
// trait's own ordering (fewer elements, smaller magnitudes, rounder
// numbers); a global attempt budget backstops traits that violate
// this, so a buggy trait degrades to "less shrinking", never a hang.
#pragma once

#include <cstddef>
#include <vector>

namespace cvr::proptest {

/// Shrink candidates for T, tried in order. The primary template
/// proposes nothing — unknown types simply don't shrink. Specialize for
/// each generated domain type (see domain.h).
template <typename T>
struct ShrinkTraits {
  static std::vector<T> candidates(const T&) { return {}; }
};

/// Generic vector shrinks: drop the first/second half, then drop each
/// single element. Element-wise simplification is left to the
/// element's own domain (a vector trait that recursed element-wise
/// would explode the candidate count).
template <typename E>
struct ShrinkTraits<std::vector<E>> {
  static std::vector<std::vector<E>> candidates(const std::vector<E>& value) {
    std::vector<std::vector<E>> out;
    const std::size_t n = value.size();
    if (n == 0) return out;
    if (n > 1) {
      out.emplace_back(value.begin(), value.begin() + n / 2);
      out.emplace_back(value.begin() + n / 2, value.end());
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<E> dropped;
      dropped.reserve(n - 1);
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) dropped.push_back(value[j]);
      }
      out.push_back(std::move(dropped));
    }
    return out;
  }
};

template <typename T>
struct ShrinkOutcome {
  T minimal;
  std::size_t steps = 0;     ///< Accepted reductions.
  std::size_t attempts = 0;  ///< Candidates evaluated (incl. rejected).
};

/// Greedy descent from a failing instance to a locally minimal one.
/// `fails(candidate)` must return true iff the property still fails on
/// the candidate; it is called at most `max_attempts` times.
template <typename T, typename Fails>
ShrinkOutcome<T> shrink_to_minimal(T failing, const Fails& fails,
                                   std::size_t max_attempts = 4000) {
  ShrinkOutcome<T> outcome{std::move(failing), 0, 0};
  bool made_progress = true;
  while (made_progress && outcome.attempts < max_attempts) {
    made_progress = false;
    for (T& candidate : ShrinkTraits<T>::candidates(outcome.minimal)) {
      if (outcome.attempts >= max_attempts) break;
      ++outcome.attempts;
      if (fails(candidate)) {
        outcome.minimal = std::move(candidate);
        ++outcome.steps;
        made_progress = true;
        break;  // restart from the smaller instance
      }
    }
  }
  return outcome;
}

}  // namespace cvr::proptest
