// The built-in property set: differential oracles over the allocator
// stack, the QoE decomposition, the fault-schedule generator, and the
// wire codec.
//
// Everything registers through register_builtin_properties() — a plain
// function called from Registry::instance(), NOT static initializers —
// so linking cvr_proptest as a static library can never silently drop a
// property. Each property is deterministic in the instance seed; see
// property.h for the replay contract.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "src/core/dv_greedy.h"
#include "src/core/fractional.h"
#include "src/core/htable.h"
#include "src/core/optimal.h"
#include "src/core/simd.h"
#include "src/content/hevc_process.h"
#include "src/faults/fault_schedule.h"
#include "src/net/estimators.h"
#include "src/net/mm1.h"
#include "src/net/wifi_channel.h"
#include "src/proptest/domain.h"
#include "src/system/system_sim.h"
#include "src/proptest/property.h"
#include "src/util/stats.h"

namespace cvr::proptest {

namespace {

using core::Allocation;
using core::BruteForceAllocator;
using core::DvGreedyAllocator;
using core::QualityLevel;
using core::SlotProblem;

std::string show_levels(const std::vector<QualityLevel>& levels) {
  std::string out = "{";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(levels[i]);
  }
  return out + "}";
}

double base_value(const SlotProblem& problem) {
  return core::evaluate(problem,
                        std::vector<QualityLevel>(problem.users.size(), 1));
}

// ---------------------------------------------------------------------------
// Core: DV-greedy differential oracles

/// Restores the SIMD backend on scope exit so a failing check can't
/// leak a forced backend into later properties.
struct BackendGuard {
  core::simd::Backend saved = core::simd::active_backend();
  ~BackendGuard() { core::simd::set_backend_for_testing(saved); }
};

/// The backends this host can actually run — scalar always, AVX2 when
/// compiled in and supported by the CPU (under CVR_FORCE_SCALAR=1 the
/// CI fallback leg still exercises both: availability is a CPU fact,
/// the env var only changes the default dispatch).
std::vector<core::simd::Backend> testable_backends() {
  std::vector<core::simd::Backend> backends{core::simd::Backend::kScalar};
  if (core::simd::avx2_available()) {
    backends.push_back(core::simd::Backend::kAvx2);
  }
  return backends;
}

/// Oracle 1: the lazy-heap argmax is bit-identical to the paper's plain
/// scan — same levels, same objective — including exact score ties
/// (tie_heavy_config duplicates users and quantizes rates to force
/// them). Both implementations must break ties toward the smaller user
/// index for this to hold. Run under EVERY available SIMD backend, and
/// compared ACROSS backends too: scalar-scan, scalar-heap, avx2-scan
/// and avx2-heap must all return the same bits.
CheckResult check_scan_heap_identical(const SlotProblem& problem) {
  using Mode = DvGreedyAllocator::Mode;
  using Strategy = DvGreedyAllocator::Strategy;
  const BackendGuard guard;
  for (Mode mode : {Mode::kDensityOnly, Mode::kValueOnly, Mode::kCombined}) {
    bool have_reference = false;
    Allocation reference;
    for (core::simd::Backend backend : testable_backends()) {
      core::simd::set_backend_for_testing(backend);
      DvGreedyAllocator scan(mode, Strategy::kScan);
      DvGreedyAllocator heap(mode, Strategy::kHeap);
      const Allocation a = scan.allocate(problem);
      const Allocation b = heap.allocate(problem);
      if (a.levels != b.levels) {
        std::ostringstream note;
        note << "mode " << static_cast<int>(mode) << " backend "
             << core::simd::backend_name(backend) << ": scan "
             << show_levels(a.levels) << " != heap " << show_levels(b.levels);
        return fail(note.str());
      }
      if (a.objective != b.objective) {
        return fail("objectives differ: scan " + show_double(a.objective) +
                    " vs heap " + show_double(b.objective));
      }
      if (have_reference &&
          (a.levels != reference.levels ||
           a.objective != reference.objective)) {
        return fail(std::string("backend ") +
                    core::simd::backend_name(backend) +
                    " disagrees with the first backend: " +
                    show_levels(a.levels) + " vs " +
                    show_levels(reference.levels));
      }
      reference = a;
      have_reference = true;
    }
  }
  return pass();
}

/// SIMD ≡ scalar: the AVX2 h-table kernel and the scalar reference
/// produce the same BITS for every h / increment / density entry, and
/// the greedy built on top returns the same allocation. Passes
/// trivially (scalar only) on hosts/builds without AVX2. The generator
/// preset feeds remainder-lane user counts and denormal/extreme-scaled
/// tables, the places a vectorization bug would hide.
CheckResult check_htable_simd_matches_scalar(const SlotProblem& problem) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  if (!core::simd::avx2_available()) return pass();
  const BackendGuard guard;

  core::simd::set_backend_for_testing(core::simd::Backend::kScalar);
  core::HTableSet scalar_tables;
  scalar_tables.build(problem);
  DvGreedyAllocator scalar_greedy;
  const Allocation scalar_alloc = scalar_greedy.allocate(problem);

  core::simd::set_backend_for_testing(core::simd::Backend::kAvx2);
  core::HTableSet avx2_tables;
  avx2_tables.build(problem);
  DvGreedyAllocator avx2_greedy;
  const Allocation avx2_alloc = avx2_greedy.allocate(problem);

  for (std::size_t n = 0; n < problem.user_count(); ++n) {
    for (QualityLevel q = 1; q <= core::kNumQualityLevels; ++q) {
      if (bits(scalar_tables[n].value(q)) != bits(avx2_tables[n].value(q))) {
        return fail("user " + std::to_string(n) + " level " +
                    std::to_string(q) + ": scalar h " +
                    show_double(scalar_tables[n].value(q)) + " != avx2 h " +
                    show_double(avx2_tables[n].value(q)));
      }
      if (q >= core::kNumQualityLevels) continue;
      if (bits(scalar_tables[n].increment(q)) !=
          bits(avx2_tables[n].increment(q))) {
        return fail("user " + std::to_string(n) + " step " +
                    std::to_string(q) + ": increments differ");
      }
      if (bits(scalar_tables[n].density(q)) !=
          bits(avx2_tables[n].density(q))) {
        return fail("user " + std::to_string(n) + " step " +
                    std::to_string(q) + ": densities differ");
      }
    }
  }
  if (scalar_alloc.levels != avx2_alloc.levels ||
      bits(scalar_alloc.objective) != bits(avx2_alloc.objective)) {
    return fail("allocations differ: scalar " +
                show_levels(scalar_alloc.levels) + " obj " +
                show_double(scalar_alloc.objective) + " vs avx2 " +
                show_levels(avx2_alloc.levels) + " obj " +
                show_double(avx2_alloc.objective));
  }
  return pass();
}

/// Incremental rebuild ≡ full rebuild (docs/performance.md): a
/// persistent HTableSet fed a mutating slot sequence — unchanged
/// slots, single-user edits, membership churn (swap/copy), a user-count
/// change and a QoeParams change (both full-rebuild triggers) — must be
/// bitwise identical at every step to a fresh HTableSet built from
/// scratch on the same problem. This is the exactness contract that
/// lets every sim route through the dirty-row path unconditionally.
CheckResult check_htable_incremental_matches_full(const SlotProblem& base) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  SlotProblem problem = base;
  core::HTableSet incremental;
  const auto compare = [&](const char* step) -> CheckResult {
    core::HTableSet full;
    full.build(problem);
    incremental.build(problem);
    for (std::size_t n = 0; n < problem.user_count(); ++n) {
      for (QualityLevel q = 1; q <= core::kNumQualityLevels; ++q) {
        if (bits(full[n].value(q)) != bits(incremental[n].value(q))) {
          return fail(std::string(step) + ": user " + std::to_string(n) +
                      " level " + std::to_string(q) + ": full h " +
                      show_double(full[n].value(q)) + " != incremental " +
                      show_double(incremental[n].value(q)));
        }
        if (q >= core::kNumQualityLevels) continue;
        if (bits(full[n].increment(q)) != bits(incremental[n].increment(q))) {
          return fail(std::string(step) + ": user " + std::to_string(n) +
                      " step " + std::to_string(q) + ": increments differ");
        }
        if (bits(full[n].density(q)) != bits(incremental[n].density(q))) {
          return fail(std::string(step) + ": user " + std::to_string(n) +
                      " step " + std::to_string(q) + ": densities differ");
        }
      }
    }
    return pass();
  };

  CheckResult r = compare("first build");
  if (!r.ok) return r;
  r = compare("unchanged slot");
  if (!r.ok) return r;
  const std::size_t n_users = problem.user_count();
  if (n_users >= 2) {
    problem.users[0] = problem.users[n_users / 2];  // one dirty row
    r = compare("one-user copy");
    if (!r.ok) return r;
    std::swap(problem.users[0], problem.users[n_users - 1]);  // churn
    r = compare("user swap");
    if (!r.ok) return r;
  }
  problem.users[0].qbar += 0.25;
  r = compare("qbar drift");
  if (!r.ok) return r;
  problem.users.push_back(problem.users[0]);  // count change: full fallback
  r = compare("user added");
  if (!r.ok) return r;
  problem.users.pop_back();
  r = compare("user removed");
  if (!r.ok) return r;
  problem.params.alpha = problem.params.alpha * 0.5 + 0.001;  // full fallback
  r = compare("alpha change");
  if (!r.ok) return r;
  problem.users.back().delta =
      std::min(1.0, problem.users.back().delta * 0.5 + 0.1);
  return compare("delta drift after params change");
}

/// Fast-path ≡ reference: the per-slot HTable stores exactly the
/// doubles h_value produces, and its increments/densities (derived by
/// subtraction at build time) are bitwise equal to h_increment /
/// h_density — the identity that licenses routing every allocator
/// through the table. Compared via bit patterns, not ==, so even a
/// sign-of-zero drift would be caught. Run under every available SIMD
/// backend: the AVX2-built table must match the scalar direct path.
CheckResult check_htable_matches_direct(const SlotProblem& problem) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  const BackendGuard guard;
  core::HTableSet tables;
  for (core::simd::Backend backend : testable_backends()) {
    core::simd::set_backend_for_testing(backend);
    tables.build(problem);
    const std::string tag =
        std::string(" [") + core::simd::backend_name(backend) + "]";
    for (std::size_t n = 0; n < problem.user_count(); ++n) {
      const auto& user = problem.users[n];
      for (QualityLevel q = 1; q <= core::kNumQualityLevels; ++q) {
        const double direct = core::h_value(user, q, problem.params);
        if (bits(tables[n].value(q)) != bits(direct)) {
          return fail("user " + std::to_string(n) + " level " +
                      std::to_string(q) + ": table h " +
                      show_double(tables[n].value(q)) + " != direct " +
                      show_double(direct) + tag);
        }
        if (q >= core::kNumQualityLevels) continue;
        const double dv = core::h_increment(user, q, problem.params);
        if (bits(tables[n].increment(q)) != bits(dv)) {
          return fail("user " + std::to_string(n) + " step " +
                      std::to_string(q) + ": table increment " +
                      show_double(tables[n].increment(q)) + " != direct " +
                      show_double(dv) + tag);
        }
        const double eta = core::h_density(user, q, problem.params);
        if (bits(tables[n].density(q)) != bits(eta)) {
          return fail("user " + std::to_string(n) + " step " +
                      std::to_string(q) + ": table density " +
                      show_double(tables[n].density(q)) + " != direct " +
                      show_double(eta) + tag);
        }
      }
    }
    // The summed objective must also agree bitwise (same addends, same
    // order), e.g. for the all-ones base every allocator starts from.
    const std::vector<QualityLevel> ones(problem.user_count(), 1);
    if (bits(tables.evaluate(ones)) != bits(core::evaluate(problem, ones))) {
      return fail("all-ones objective differs: table " +
                  show_double(tables.evaluate(ones)) + " != direct " +
                  show_double(core::evaluate(problem, ones)) + tag);
    }
  }
  return pass();
}

/// Oracle 2 (Theorem 1): on the published model the combined greedy's
/// gain over the all-ones base is at least half the exact optimum's
/// gain. Gains, not absolute objectives: level-1 values can be negative
/// through the constant miss-variance term, and the gain is what the
/// paper's proof bounds (see approx_ratio_test.cpp).
CheckResult check_theorem1(const SlotProblem& problem) {
  BruteForceAllocator brute;
  DvGreedyAllocator greedy;
  const double base = base_value(problem);
  const double opt_gain = brute.allocate(problem).objective - base;
  const double greedy_gain = greedy.allocate(problem).objective - base;
  if (opt_gain < -1e-9) {
    return fail("exact optimum below the all-ones base: gain " +
                show_double(opt_gain));
  }
  if (greedy_gain < 0.5 * opt_gain - 1e-9) {
    return fail("greedy gain " + show_double(greedy_gain) +
                " < half of optimal gain " + show_double(opt_gain));
  }
  return pass();
}

/// Oracle 3: fractional relaxation >= exact optimum >= dv-greedy. The
/// left inequality needs concave h (published model); the right holds
/// because greedy's allocation is feasible and brute force is exact.
CheckResult check_bounds_sandwich(const SlotProblem& problem) {
  BruteForceAllocator brute;
  DvGreedyAllocator greedy;
  const double upper = core::fractional_upper_bound(problem);
  const double exact = brute.allocate(problem).objective;
  const double dv = greedy.allocate(problem).objective;
  if (upper < exact - 1e-9) {
    return fail("fractional bound " + show_double(upper) +
                " below exact optimum " + show_double(exact));
  }
  if (exact < dv - 1e-9) {
    return fail("exact optimum " + show_double(exact) +
                " below dv-greedy " + show_double(dv));
  }
  return pass();
}

/// Every strategy/mode combination returns one valid level per user, a
/// feasible allocation (per-user caps, server budget unless all-ones),
/// an objective matching evaluate(), and never less than the mandatory
/// all-ones base it starts from.
CheckResult check_allocation_feasible(const SlotProblem& problem) {
  using Mode = DvGreedyAllocator::Mode;
  using Strategy = DvGreedyAllocator::Strategy;
  const double base = base_value(problem);
  for (Strategy strategy : {Strategy::kScan, Strategy::kHeap}) {
    for (Mode mode :
         {Mode::kDensityOnly, Mode::kValueOnly, Mode::kCombined}) {
      DvGreedyAllocator allocator(mode, strategy);
      const Allocation allocation = allocator.allocate(problem);
      if (allocation.levels.size() != problem.users.size()) {
        return fail("wrong level count: " +
                    std::to_string(allocation.levels.size()));
      }
      if (!core::allocation_feasible(problem, allocation.levels)) {
        return fail("infeasible allocation " +
                    show_levels(allocation.levels));
      }
      const double evaluated = core::evaluate(problem, allocation.levels);
      if (std::abs(allocation.objective - evaluated) >
          1e-9 * std::max(1.0, std::abs(evaluated))) {
        return fail("reported objective " + show_double(allocation.objective) +
                    " != evaluate() " + show_double(evaluated));
      }
      if (allocation.objective < base - 1e-9 * std::max(1.0, std::abs(base))) {
        return fail("objective " + show_double(allocation.objective) +
                    " below the all-ones base " + show_double(base));
      }
    }
  }
  return pass();
}

/// kCombined is exactly "run both passes, keep the better" — its
/// objective equals max(density-only, value-only) bit for bit, for both
/// strategies.
CheckResult check_combined_best_of_passes(const SlotProblem& problem) {
  using Mode = DvGreedyAllocator::Mode;
  using Strategy = DvGreedyAllocator::Strategy;
  for (Strategy strategy : {Strategy::kScan, Strategy::kHeap}) {
    const double density =
        DvGreedyAllocator(Mode::kDensityOnly, strategy).allocate(problem)
            .objective;
    const double value =
        DvGreedyAllocator(Mode::kValueOnly, strategy).allocate(problem)
            .objective;
    const double combined =
        DvGreedyAllocator(Mode::kCombined, strategy).allocate(problem)
            .objective;
    if (combined != std::max(density, value)) {
      return fail("combined " + show_double(combined) +
                  " != max(density " + show_double(density) + ", value " +
                  show_double(value) + ")");
    }
  }
  return pass();
}

/// The published (loss-oblivious, analytic-table) model always yields
/// discretely concave h_n — the assumption behind Theorem 1.
CheckResult check_h_concave(const SlotProblem& problem) {
  for (std::size_t n = 0; n < problem.users.size(); ++n) {
    if (!core::h_is_concave(problem.users[n], problem.params)) {
      return fail("user " + std::to_string(n) +
                  " has non-concave h under the published model");
    }
  }
  return pass();
}

/// Oracle 4 (QoE side): UserQoeAccumulator's incremental Welford state
/// matches a batch recompute of mean / population variance / QoE.
CheckResult check_qoe_accumulator(const QoeTrace& trace) {
  core::UserQoeAccumulator acc;
  for (const auto& step : trace.steps) {
    acc.record_displayed(step.chosen, step.displayed, step.delay);
  }
  const std::size_t n = trace.steps.size();
  if (acc.slots() != n) {
    return fail("slots() " + std::to_string(acc.slots()) + " != " +
                std::to_string(n));
  }
  if (n == 0) return pass();

  long double quality_sum = 0.0L, delay_sum = 0.0L, level_sum = 0.0L;
  for (const auto& step : trace.steps) {
    quality_sum += step.displayed;
    delay_sum += step.delay;
    level_sum += step.chosen;
  }
  const long double mean = quality_sum / n;
  long double m2 = 0.0L;
  for (const auto& step : trace.steps) {
    const long double d = step.displayed - mean;
    m2 += d * d;
  }
  const long double variance = m2 / n;
  // Displayed quality is bounded by kNumQualityLevels and delay by the
  // generator's 50 ms cap, so an absolute ULP-scaled tolerance works.
  const double tol = 1e-12 * static_cast<double>(n) * 64.0;
  const auto close_to = [tol](double got, long double want) {
    return std::abs(got - static_cast<double>(want)) <= tol;
  };
  if (!close_to(acc.mean_viewed_quality(), mean)) {
    return fail("mean_viewed_quality " + show_double(acc.mean_viewed_quality()) +
                " != batch " + show_double(static_cast<double>(mean)));
  }
  if (!close_to(acc.variance(), variance)) {
    return fail("variance " + show_double(acc.variance()) + " != batch " +
                show_double(static_cast<double>(variance)));
  }
  if (!close_to(acc.mean_delay(), delay_sum / n)) {
    return fail("mean_delay " + show_double(acc.mean_delay()) + " != batch " +
                show_double(static_cast<double>(delay_sum / n)));
  }
  if (!close_to(acc.mean_level(), level_sum / n)) {
    return fail("mean_level " + show_double(acc.mean_level()) + " != batch " +
                show_double(static_cast<double>(level_sum / n)));
  }
  const core::QoeParams params{0.02, 0.5};
  const long double qoe = mean - 0.02L * (delay_sum / n) - 0.5L * variance;
  if (!close_to(acc.average_qoe(params), qoe)) {
    return fail("average_qoe " + show_double(acc.average_qoe(params)) +
                " != batch " + show_double(static_cast<double>(qoe)));
  }
  return pass();
}

// ---------------------------------------------------------------------------
// Util: Welford vs batch, RNG contracts

struct BatchMoments {
  long double mean = 0.0L;
  long double variance = 0.0L;  // population
  double min = 0.0;
  double max = 0.0;
};

BatchMoments batch_moments(const std::vector<double>& samples) {
  BatchMoments out;
  if (samples.empty()) return out;
  long double sum = 0.0L;
  out.min = samples[0];
  out.max = samples[0];
  for (double x : samples) {
    sum += x;
    out.min = std::min(out.min, x);
    out.max = std::max(out.max, x);
  }
  out.mean = sum / static_cast<long double>(samples.size());
  long double m2 = 0.0L;
  for (double x : samples) {
    const long double d = x - out.mean;
    m2 += d * d;
  }
  out.variance = m2 / static_cast<long double>(samples.size());
  return out;
}

/// ULP-scaled tolerance for a sample set spanning magnitudes: 1e-12 of
/// the mean squared magnitude (the conditioning scale of a variance
/// computation), never below 1e-12 of the magnitude scale itself.
double moment_tolerance(const std::vector<double>& samples) {
  long double meansq = 0.0L;
  for (double x : samples) meansq += static_cast<long double>(x) * x;
  if (!samples.empty()) meansq /= static_cast<long double>(samples.size());
  return 1e-12 * static_cast<double>(samples.size()) *
         std::max(1.0, static_cast<double>(meansq));
}

/// Oracle: incremental Welford (RunningStat) == batch two-pass
/// recompute, across nine orders of magnitude and exact-repeat runs.
CheckResult check_welford_batch(const SampleStream& stream) {
  cvr::RunningStat stat;
  for (double x : stream.samples) stat.add(x);
  if (stat.count() != stream.samples.size()) {
    return fail("count " + std::to_string(stat.count()));
  }
  if (stream.samples.empty()) return pass();
  const BatchMoments batch = batch_moments(stream.samples);
  const double tol = moment_tolerance(stream.samples);
  if (std::abs(stat.mean() - static_cast<double>(batch.mean)) > tol) {
    return fail("mean " + show_double(stat.mean()) + " != batch " +
                show_double(static_cast<double>(batch.mean)) + " (tol " +
                show_double(tol) + ")");
  }
  if (std::abs(stat.population_variance() -
               static_cast<double>(batch.variance)) > tol) {
    return fail("population_variance " +
                show_double(stat.population_variance()) + " != batch " +
                show_double(static_cast<double>(batch.variance)) + " (tol " +
                show_double(tol) + ")");
  }
  if (stat.min() != batch.min || stat.max() != batch.max) {
    return fail("min/max drift: got [" + show_double(stat.min()) + ", " +
                show_double(stat.max()) + "]");
  }
  return pass();
}

/// Merging split-stream accumulators (parallel Welford) matches feeding
/// the whole stream sequentially.
CheckResult check_welford_merge(const SampleStream& stream) {
  cvr::RunningStat sequential, head, tail;
  for (double x : stream.samples) sequential.add(x);
  for (std::size_t i = 0; i < stream.samples.size(); ++i) {
    (i < stream.split ? head : tail).add(stream.samples[i]);
  }
  head.merge(tail);
  if (head.count() != sequential.count()) {
    return fail("merged count " + std::to_string(head.count()) + " != " +
                std::to_string(sequential.count()));
  }
  if (stream.samples.empty()) return pass();
  const double tol = moment_tolerance(stream.samples);
  if (std::abs(head.mean() - sequential.mean()) > tol) {
    return fail("merged mean " + show_double(head.mean()) +
                " != sequential " + show_double(sequential.mean()));
  }
  if (std::abs(head.population_variance() - sequential.population_variance()) >
      tol) {
    return fail("merged variance " + show_double(head.population_variance()) +
                " != sequential " +
                show_double(sequential.population_variance()));
  }
  if (head.min() != sequential.min() || head.max() != sequential.max()) {
    return fail("merged min/max drift");
  }
  return pass();
}

/// RNG contracts the generators in this harness rely on: inclusive
/// integer bounds, half-open real bounds, degenerate Bernoulli, and
/// seed determinism.
CheckResult check_rng_bounds(const std::uint64_t& seed) {
  cvr::Rng rng(seed);
  for (int k = 0; k < 32; ++k) {
    const std::int64_t lo = rng.uniform_int(-1000, 1000);
    const std::int64_t hi = lo + rng.uniform_int(0, 2000);
    const std::int64_t v = rng.uniform_int(lo, hi);
    if (v < lo || v > hi) {
      return fail("uniform_int(" + std::to_string(lo) + ", " +
                  std::to_string(hi) + ") returned " + std::to_string(v));
    }
    const double a = rng.uniform(-50.0, 50.0);
    const double b = a + rng.uniform(1e-3, 100.0);
    const double x = rng.uniform(a, b);
    if (x < a || x >= b) {
      return fail("uniform(" + show_double(a) + ", " + show_double(b) +
                  ") returned " + show_double(x));
    }
    if (rng.bernoulli(0.0)) return fail("bernoulli(0) returned true");
    if (!rng.bernoulli(1.0)) return fail("bernoulli(1) returned false");
  }
  cvr::Rng twin_a(seed), twin_b(seed);
  for (int k = 0; k < 16; ++k) {
    if (twin_a.engine()() != twin_b.engine()()) {
      return fail("same seed produced diverging streams");
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// Net: M/M/1 delay shape

/// Oracle 5: d(r) = r / (B - r) is zero at rest, strictly positive and
/// nondecreasing in r, discretely convex below saturation, capped at
/// kSaturatedDelay, and saturation (r >= B) returns the cap exactly —
/// an infeasible rate never yields a "better" delay.
CheckResult check_mm1_shape(const double& bandwidth) {
  if (net::mm1_delay(0.0, bandwidth) != 0.0) {
    return fail("mm1_delay(0, B) != 0");
  }
  constexpr int kGrid = 64;
  std::vector<double> delay(kGrid + 1, 0.0);
  for (int k = 1; k <= kGrid; ++k) {
    const double r = bandwidth * k / (kGrid + 1.0);
    delay[static_cast<std::size_t>(k)] = net::mm1_delay(r, bandwidth);
    const double d = delay[static_cast<std::size_t>(k)];
    if (!(d > 0.0) || d > net::kSaturatedDelay) {
      return fail("delay out of (0, cap] at r=" + show_double(r) + ": " +
                  show_double(d));
    }
  }
  for (int k = 1; k <= kGrid; ++k) {
    if (delay[static_cast<std::size_t>(k)] <
        delay[static_cast<std::size_t>(k - 1)]) {
      return fail("delay decreased between grid points " +
                  std::to_string(k - 1) + " and " + std::to_string(k));
    }
  }
  for (int k = 1; k < kGrid; ++k) {
    const double second = delay[static_cast<std::size_t>(k + 1)] -
                          2.0 * delay[static_cast<std::size_t>(k)] +
                          delay[static_cast<std::size_t>(k - 1)];
    if (second < -1e-9 * std::max(1.0, delay[static_cast<std::size_t>(k + 1)])) {
      return fail("delay not convex at grid point " + std::to_string(k) +
                  ": second difference " + show_double(second));
    }
  }
  for (double factor : {1.0, 1.5, 100.0}) {
    if (net::mm1_delay(bandwidth * factor, bandwidth) != net::kSaturatedDelay) {
      return fail("saturated rate did not return kSaturatedDelay");
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// Faults: schedule generator

bool events_equal(const faults::FaultEvent& a, const faults::FaultEvent& b) {
  return a.type == b.type && a.target == b.target &&
         a.start_slot == b.start_slot &&
         a.duration_slots == b.duration_slots && a.severity == b.severity;
}

/// Oracle 6: generate_schedule is a pure function of the config — two
/// calls agree event-for-event — and its output is sorted by start
/// slot, in-horizon, valid-target, and empty at intensity zero.
CheckResult check_fault_schedule_deterministic(
    const faults::FaultScheduleConfig& config) {
  const faults::FaultSchedule first = faults::generate_schedule(config);
  const faults::FaultSchedule second = faults::generate_schedule(config);
  const auto& a = first.events();
  const auto& b = second.events();
  if (a.size() != b.size()) {
    return fail("regeneration changed event count: " +
                std::to_string(a.size()) + " vs " + std::to_string(b.size()));
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!events_equal(a[i], b[i])) {
      return fail("regeneration changed event " + std::to_string(i));
    }
  }
  if (config.intensity == 0.0 && !a.empty()) {
    return fail("intensity 0 produced " + std::to_string(a.size()) +
                " event(s)");
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const faults::FaultEvent& e = a[i];
    if (i > 0 && e.start_slot < a[i - 1].start_slot) {
      return fail("events not sorted by start_slot at index " +
                  std::to_string(i));
    }
    if (e.start_slot >= config.slots) {
      return fail("event starts beyond the horizon: slot " +
                  std::to_string(e.start_slot));
    }
    if (e.duration_slots == 0) return fail("zero-duration event");
    switch (e.type) {
      case faults::FaultType::kUserDisconnect:
      case faults::FaultType::kPoseBlackout:
      case faults::FaultType::kAckStall:
        if (e.target >= config.users) return fail("user target out of range");
        break;
      case faults::FaultType::kRouterOutage:
        if (e.target >= config.routers) {
          return fail("router target out of range");
        }
        if (e.severity != config.outage_depth) {
          return fail("outage severity " + show_double(e.severity) +
                      " != configured depth " +
                      show_double(config.outage_depth));
        }
        break;
      case faults::FaultType::kCacheFlush:
        break;
      case faults::FaultType::kServerCrash:
      case faults::FaultType::kServerRecover:
      case faults::FaultType::kFleetPartition:
        if (config.servers == 0) {
          return fail("server-scoped event generated with servers == 0");
        }
        if (e.target >= config.servers) {
          return fail("server target out of range");
        }
        break;
    }
  }
  return pass();
}

/// Oracle 6b (fleet): the server-scoped draws are appended strictly
/// after every legacy draw — generating with servers > 0 and stripping
/// the fleet-typed events reproduces the servers == 0 schedule
/// event-for-event, so pre-fleet (seed, config) pairs are unchanged.
CheckResult check_fleet_events_appended(
    const faults::FaultScheduleConfig& config) {
  faults::FaultScheduleConfig fleet = config;
  if (fleet.servers == 0) fleet.servers = 3;  // force the fleet path
  faults::FaultScheduleConfig legacy = fleet;
  legacy.servers = 0;

  const auto is_fleet_event = [](const faults::FaultEvent& e) {
    return e.type == faults::FaultType::kServerCrash ||
           e.type == faults::FaultType::kServerRecover ||
           e.type == faults::FaultType::kFleetPartition;
  };
  const faults::FaultSchedule fleet_schedule = faults::generate_schedule(fleet);
  std::vector<faults::FaultEvent> stripped;
  for (const auto& e : fleet_schedule.events()) {
    if (!is_fleet_event(e)) stripped.push_back(e);
  }
  const faults::FaultSchedule legacy_schedule =
      faults::generate_schedule(legacy);
  const auto& expected = legacy_schedule.events();
  if (stripped.size() != expected.size()) {
    return fail("stripping fleet events changed the legacy count: " +
                std::to_string(stripped.size()) + " vs " +
                std::to_string(expected.size()));
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (!events_equal(stripped[i], expected[i])) {
      return fail("legacy event " + std::to_string(i) +
                  " differs once fleet draws are enabled");
    }
  }
  return pass();
}

/// The schedule's query methods agree with a brute-force scan over the
/// raw event list at seeded probe points (including slots beyond the
/// horizon).
CheckResult check_fault_schedule_queries(
    const faults::FaultScheduleConfig& config) {
  const faults::FaultSchedule schedule = faults::generate_schedule(config);
  const auto& events = schedule.events();

  std::size_t expected_horizon = 0;
  for (const auto& e : events) {
    expected_horizon = std::max(expected_horizon, e.end_slot());
  }
  if (schedule.horizon() != expected_horizon) {
    return fail("horizon() " + std::to_string(schedule.horizon()) +
                " != max end_slot " + std::to_string(expected_horizon));
  }

  const auto active = [&events](faults::FaultType type, std::size_t target,
                                std::size_t slot) {
    for (const auto& e : events) {
      if (e.type == type && e.target == target && e.active_at(slot)) {
        return true;
      }
    }
    return false;
  };

  cvr::Rng probe(config.seed ^ 0x51edu);
  for (int k = 0; k < 64; ++k) {
    const auto user = static_cast<std::size_t>(
        probe.uniform_int(0, static_cast<std::int64_t>(config.users) - 1));
    const auto router = static_cast<std::size_t>(
        probe.uniform_int(0, static_cast<std::int64_t>(config.routers) - 1));
    // With servers == 0 the probe still queries server 0: a schedule
    // with no server-scoped events must answer false everywhere.
    const auto server = static_cast<std::size_t>(probe.uniform_int(
        0, std::max<std::int64_t>(
               static_cast<std::int64_t>(config.servers) - 1, 0)));
    const auto slot = static_cast<std::size_t>(probe.uniform_int(
        0, static_cast<std::int64_t>(config.slots + config.slots / 4)));

    if (schedule.user_disconnected(user, slot) !=
        active(faults::FaultType::kUserDisconnect, user, slot)) {
      return fail("user_disconnected mismatch at user " +
                  std::to_string(user) + " slot " + std::to_string(slot));
    }
    if (schedule.pose_blackout(user, slot) !=
        active(faults::FaultType::kPoseBlackout, user, slot)) {
      return fail("pose_blackout mismatch at user " + std::to_string(user) +
                  " slot " + std::to_string(slot));
    }
    if (schedule.ack_stalled(user, slot) !=
        active(faults::FaultType::kAckStall, user, slot)) {
      return fail("ack_stalled mismatch at user " + std::to_string(user) +
                  " slot " + std::to_string(slot));
    }

    double multiplier = 1.0;
    for (const auto& e : events) {
      if (e.type == faults::FaultType::kRouterOutage && e.target == router &&
          e.active_at(slot)) {
        multiplier *= e.severity;
      }
    }
    if (schedule.router_capacity_multiplier(router, slot) != multiplier) {
      return fail("router_capacity_multiplier mismatch at router " +
                  std::to_string(router) + " slot " + std::to_string(slot));
    }

    bool flush = false;
    for (const auto& e : events) {
      if (e.type == faults::FaultType::kCacheFlush && e.start_slot == slot) {
        flush = true;
      }
    }
    if (schedule.cache_flush_at(slot) != flush) {
      return fail("cache_flush_at mismatch at slot " + std::to_string(slot));
    }

    // server_crashed: a covering crash window stands unless a recover
    // for the same server starts inside (crash start, slot].
    bool crashed = false;
    for (const auto& e : events) {
      if (e.type != faults::FaultType::kServerCrash || e.target != server ||
          !e.active_at(slot)) {
        continue;
      }
      bool truncated = false;
      for (const auto& r : events) {
        if (r.type == faults::FaultType::kServerRecover &&
            r.target == server && r.start_slot > e.start_slot &&
            r.start_slot <= slot) {
          truncated = true;
        }
      }
      crashed = crashed || !truncated;
    }
    if (schedule.server_crashed(server, slot) != crashed) {
      return fail("server_crashed mismatch at server " +
                  std::to_string(server) + " slot " + std::to_string(slot));
    }
    if (schedule.server_partitioned(server, slot) !=
        active(faults::FaultType::kFleetPartition, server, slot)) {
      return fail("server_partitioned mismatch at server " +
                  std::to_string(server) + " slot " + std::to_string(slot));
    }

    bool any = false;
    for (const auto& e : events) {
      if (!e.active_at(slot)) continue;
      switch (e.type) {
        case faults::FaultType::kUserDisconnect:
        case faults::FaultType::kPoseBlackout:
        case faults::FaultType::kAckStall:
          any = any || e.target == user;
          break;
        case faults::FaultType::kRouterOutage:
          any = any || e.target == router;
          break;
        case faults::FaultType::kCacheFlush:
          any = true;
          break;
        case faults::FaultType::kServerCrash:
        case faults::FaultType::kServerRecover:
        case faults::FaultType::kFleetPartition:
          break;  // membership is fleet state, never a per-user fault
      }
    }
    if (schedule.any_fault_for_user(user, router, slot) != any) {
      return fail("any_fault_for_user mismatch at user " +
                  std::to_string(user) + " router " + std::to_string(router) +
                  " slot " + std::to_string(slot));
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// Proto: round-trip and malformed-bytes corpus

WireMessage decode_any(const proto::Buffer& framed) {
  switch (proto::peek_type(framed)) {
    case proto::MessageType::kPoseUpdate:
      return proto::decode_pose_update(framed);
    case proto::MessageType::kDeliveryAck:
      return proto::decode_delivery_ack(framed);
    case proto::MessageType::kReleaseAck:
      return proto::decode_release_ack(framed);
    case proto::MessageType::kTileHeader:
      return proto::decode_tile_header(framed);
    case proto::MessageType::kConnectRequest:
      return proto::decode_connect_request(framed);
    case proto::MessageType::kAdmitResponse:
      return proto::decode_admit_response(framed);
    case proto::MessageType::kDisconnectNotice:
      return proto::decode_disconnect_notice(framed);
    case proto::MessageType::kUserHandoff:
      return proto::decode_user_handoff(framed);
  }
  throw std::runtime_error("decode_any: unreachable tag");
}

/// Oracle 7a: encode -> decode is the identity, and the encoding is
/// canonical (re-encoding the decoded message reproduces the frame).
CheckResult check_proto_roundtrip(const WireMessage& message) {
  const proto::Buffer framed = encode_wire_message(message);
  const WireMessage decoded = decode_any(framed);
  if (!(decoded == message)) {
    return fail("decoded message differs from the original");
  }
  if (encode_wire_message(decoded) != framed) {
    return fail("re-encoding the decoded message changed the bytes");
  }
  return pass();
}

/// Oracle 7b: corrupting a valid frame (single-byte overwrite — an
/// error burst CRC32 always detects — truncation, or a trailing byte)
/// must surface as a thrown parse error, never silent acceptance of
/// different bytes and never UB (the CI sanitizer jobs run this
/// property under ASan+UBSan).
CheckResult check_proto_malformed(const MutationCase& mutation) {
  if (mutation.is_noop()) return pass();
  const proto::Buffer corrupted = mutation.mutated();
  try {
    const WireMessage decoded = decode_any(corrupted);
    if (encode_wire_message(decoded) == corrupted) return pass();
    return fail("decoder silently accepted a corrupted frame");
  } catch (const std::exception&) {
    return pass();  // rejected with a typed error, as required
  }
}

/// Writer/Reader primitive round-trip, bit-exact (doubles compared as
/// bit patterns so negative zero and extreme exponents count), plus the
/// frame/unframe CRC envelope.
CheckResult check_codec_primitives(const std::uint64_t& seed) {
  cvr::Rng rng(seed);
  std::vector<std::uint8_t> u8s;
  std::vector<std::uint16_t> u16s;
  std::vector<std::uint32_t> u32s;
  std::vector<std::uint64_t> u64s;
  std::vector<double> f64s;
  for (int k = 0; k < 8; ++k) {
    u8s.push_back(static_cast<std::uint8_t>(rng.engine()()));
    u16s.push_back(static_cast<std::uint16_t>(rng.engine()()));
    u32s.push_back(static_cast<std::uint32_t>(rng.engine()()));
    u64s.push_back(rng.engine()());
    double value = std::bit_cast<double>(rng.engine()());
    if (std::isnan(value)) value = 0.0;  // NaN != NaN breaks ==
    f64s.push_back(value);
  }
  u64s.push_back(0);
  u64s.push_back(~0ull);
  f64s.push_back(-0.0);

  proto::Buffer payload;
  proto::Writer writer(payload);
  for (auto v : u8s) writer.u8(v);
  for (auto v : u16s) writer.u16(v);
  for (auto v : u32s) writer.u32(v);
  for (auto v : u64s) writer.u64(v);
  for (auto v : f64s) writer.f64(v);
  const auto blob_size = static_cast<std::size_t>(rng.uniform_int(0, 32));
  const proto::Buffer blob(blob_size,
                           static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  writer.bytes(blob.data(), blob.size());

  proto::Reader reader(payload);
  for (auto v : u8s) {
    if (reader.u8() != v) return fail("u8 round-trip mismatch");
  }
  for (auto v : u16s) {
    if (reader.u16() != v) return fail("u16 round-trip mismatch");
  }
  for (auto v : u32s) {
    if (reader.u32() != v) return fail("u32 round-trip mismatch");
  }
  for (auto v : u64s) {
    if (reader.u64() != v) return fail("u64 round-trip mismatch");
  }
  for (auto v : f64s) {
    if (std::bit_cast<std::uint64_t>(reader.f64()) !=
        std::bit_cast<std::uint64_t>(v)) {
      return fail("f64 round-trip not bit-exact");
    }
  }
  if (reader.bytes() != blob) return fail("bytes round-trip mismatch");
  if (!reader.done()) return fail("reader has trailing bytes");

  const proto::Buffer framed = proto::frame(payload);
  proto::Reader frame_reader(framed);
  if (proto::unframe(frame_reader) != payload) {
    return fail("frame/unframe round-trip mismatch");
  }
  if (!frame_reader.done()) return fail("unframe left trailing bytes");
  return pass();
}

Gen<std::uint64_t> seeds() {
  return [](cvr::Rng& rng) { return rng.engine()(); };
}

// --- workload pack: Wi-Fi / HEVC / probing estimator ----------------------

/// Draws a valid randomized WifiContentionConfig from `rng`.
net::WifiContentionConfig random_wifi_config(cvr::Rng& rng) {
  net::WifiContentionConfig config;
  config.enabled = true;
  config.contention_overhead = rng.uniform(0.0, 0.2);
  config.max_overhead = rng.uniform(0.2, 0.9);
  config.base_error_rate = rng.uniform(0.001, 0.1);
  config.error_growth = rng.uniform(1.0, 1.6);
  config.max_retries = static_cast<std::size_t>(rng.uniform_int(0, 10));
  config.retry_airtime_overhead = rng.uniform(0.0, 1.0);
  config.backoff_base_slots = static_cast<std::size_t>(rng.uniform_int(1, 4));
  config.backoff_multiplier = rng.uniform(1.0, 3.0);
  config.backoff_max_slots = static_cast<std::size_t>(rng.uniform_int(4, 64));
  config.backoff_jitter = rng.uniform(0.0, 0.9);
  return config;
}

/// Airtime shares sum to <= 1 and the per-station share strictly
/// decreases as contenders join, for every valid config.
CheckResult check_wifi_airtime_shares(const std::uint64_t& seed) {
  cvr::Rng rng(seed);
  const net::WifiContentionConfig config = random_wifi_config(rng);
  double previous = 2.0;
  for (std::size_t stations = 1; stations <= 12; ++stations) {
    const auto shares = net::wifi_airtime_shares(config, stations);
    if (shares.size() != stations) return fail("share count != stations");
    double sum = 0.0;
    for (double s : shares) {
      if (!(s > 0.0) || !std::isfinite(s)) {
        return fail("non-positive share at k=" + std::to_string(stations));
      }
      if (s != shares[0]) return fail("shares not airtime-fair");
      sum += s;
    }
    if (sum > 1.0 + 1e-12) {
      return fail("shares sum " + show_double(sum) + " > 1 at k=" +
                  std::to_string(stations));
    }
    if (shares[0] >= previous) {
      return fail("per-station share not decreasing at k=" +
                  std::to_string(stations));
    }
    previous = shares[0];
  }
  return pass();
}

/// Backoff is a pure function of (config, seed, station, attempt),
/// never below one slot, and capped at backoff_max_slots * (1 + jitter).
CheckResult check_wifi_backoff_deterministic(const std::uint64_t& seed) {
  cvr::Rng rng(seed);
  const net::WifiContentionConfig config = random_wifi_config(rng);
  const std::uint64_t channel_seed = rng.engine()();
  const double cap = static_cast<double>(config.backoff_max_slots) *
                     (1.0 + config.backoff_jitter) + 1.0;
  for (std::size_t station = 0; station < 4; ++station) {
    for (std::size_t attempt = 0; attempt < 10; ++attempt) {
      const std::size_t a =
          net::wifi_backoff_slots(config, channel_seed, station, attempt);
      const std::size_t b =
          net::wifi_backoff_slots(config, channel_seed, station, attempt);
      if (a != b) {
        return fail("backoff not deterministic at (" +
                    std::to_string(station) + ", " + std::to_string(attempt) +
                    "): " + std::to_string(a) + " vs " + std::to_string(b));
      }
      if (a < 1) return fail("backoff below one slot");
      if (static_cast<double>(a) > cap) {
        return fail("backoff " + std::to_string(a) + " above cap " +
                    show_double(cap));
      }
    }
  }
  return pass();
}

/// The structural I/P pattern averages to exactly 1 over each GoP
/// (within 1e-9, Welford over the frames of the GoP), and a zero-sigma
/// process replays it.
CheckResult check_hevc_gop_mean(const std::uint64_t& seed) {
  cvr::Rng rng(seed);
  content::HevcProcessConfig config;
  config.enabled = true;
  config.gop_length = static_cast<std::size_t>(rng.uniform_int(1, 64));
  config.i_frame_ratio = rng.uniform(1.0, 12.0);
  config.size_sigma = 0.0;
  config.burst_rho = rng.uniform(0.0, 0.99);
  // Widen the clamps past any reachable structural value (I < R <= 12):
  // the default bounds are part of the *process* model, but this
  // property checks the unclipped structural pattern.
  config.min_multiplier = 1e-3;
  config.max_multiplier = 64.0;
  content::HevcFrameProcess process(config, rng.engine()());
  cvr::RunningStat gop_mean;
  for (std::size_t t = 0; t < 3 * config.gop_length; ++t) {
    const double structural =
        content::hevc_structural_multiplier(config, t % config.gop_length);
    const double stepped = process.step();
    if (stepped != structural) {
      return fail("zero-sigma process diverges from structural at frame " +
                  std::to_string(t));
    }
    gop_mean.add(structural);
    if ((t + 1) % config.gop_length == 0) {
      if (std::abs(gop_mean.mean() - 1.0) > 1e-9) {
        return fail("per-GoP mean " + show_double(gop_mean.mean()) +
                    " != 1 (gop=" + std::to_string(config.gop_length) +
                    ", ratio=" + show_double(config.i_frame_ratio) + ")");
      }
      gop_mean = cvr::RunningStat();
    }
  }
  return pass();
}

/// The probing estimator survives arbitrary (including hostile) sample
/// streams with a finite non-negative estimate, and the budget split
/// conserves the slot budget bitwise: content == total - probe.
CheckResult check_probing_estimator_sane(const std::uint64_t& seed) {
  cvr::Rng rng(seed);
  net::ProbingConfig config;
  config.probe_period_slots = static_cast<std::size_t>(rng.uniform_int(1, 200));
  config.probe_fraction = rng.uniform(0.0, 1.0);
  config.probe_cap_mbps = rng.uniform(0.0, 50.0);
  config.alpha_passive = rng.uniform(1e-3, 1.0);
  config.alpha_probe = rng.uniform(1e-3, 1.0);
  config.initial_mbps = rng.uniform(0.0, 100.0);
  net::ProbingThroughputEstimator estimator(config);
  for (int k = 0; k < 200; ++k) {
    double sample = rng.uniform(-50.0, 200.0);
    const int corrupt = static_cast<int>(rng.uniform_int(0, 19));
    if (corrupt == 0) sample = std::numeric_limits<double>::quiet_NaN();
    if (corrupt == 1) sample = std::numeric_limits<double>::infinity();
    if (rng.bernoulli(0.3)) {
      estimator.observe_probe(sample);
    } else {
      estimator.observe_passive(sample);
    }
    const double estimate = estimator.estimate_mbps();
    if (!std::isfinite(estimate) || estimate < 0.0) {
      return fail("estimate " + show_double(estimate) + " after sample " +
                  show_double(sample));
    }
    const double budget = estimator.probe_budget_mbps();
    if (!std::isfinite(budget) || budget < 0.0) {
      return fail("probe budget " + show_double(budget));
    }
    const double total = rng.uniform(0.0, 120.0);
    const net::BudgetSplit split = net::split_probe_budget(total, budget);
    if (split.probe_mbps < 0.0 || split.probe_mbps > total) {
      return fail("probe share " + show_double(split.probe_mbps) +
                  " outside [0, " + show_double(total) + "]");
    }
    if (split.content_mbps != total - split.probe_mbps) {
      return fail("budget not conserved bitwise: content " +
                  show_double(split.content_mbps) + " != total " +
                  show_double(total) + " - probe " +
                  show_double(split.probe_mbps));
    }
  }
  return pass();
}

/// Defaults-off bit-identity as a property: a SystemSim whose workload
/// pack is disabled — but with every other pack field randomized — is
/// bitwise identical to one that never mentions the pack.
CheckResult check_workload_defaults_inert(const std::uint64_t& seed) {
  cvr::Rng rng(seed);
  system::SystemSimConfig plain = system::setup_one_router(
      static_cast<std::size_t>(rng.uniform_int(2, 4)));
  plain.slots = static_cast<std::size_t>(rng.uniform_int(40, 90));
  plain.seed = rng.engine()();
  system::SystemSimConfig tweaked = plain;
  tweaked.channel.contention = random_wifi_config(rng);
  tweaked.channel.contention.enabled = false;
  tweaked.server.hevc.enabled = false;
  tweaked.server.hevc.gop_length =
      static_cast<std::size_t>(rng.uniform_int(1, 64));
  tweaked.server.hevc.i_frame_ratio = rng.uniform(1.0, 12.0);
  tweaked.server.hevc.size_sigma = rng.uniform(0.0, 1.0);
  tweaked.server.estimator_arm = system::EstimatorArm::kEma;
  tweaked.server.probing.probe_period_slots =
      static_cast<std::size_t>(rng.uniform_int(1, 200));
  tweaked.server.probing.probe_fraction = rng.uniform(0.0, 1.0);
  tweaked.server.probing.alpha_probe = rng.uniform(1e-3, 1.0);
  core::DvGreedyAllocator alloc_plain, alloc_tweaked;
  const auto a = system::SystemSim(plain).run(alloc_plain, 0);
  const auto b = system::SystemSim(tweaked).run(alloc_tweaked, 0);
  if (a.size() != b.size()) return fail("outcome count differs");
  for (std::size_t u = 0; u < a.size(); ++u) {
    if (std::bit_cast<std::uint64_t>(a[u].avg_qoe) !=
            std::bit_cast<std::uint64_t>(b[u].avg_qoe) ||
        std::bit_cast<std::uint64_t>(a[u].avg_quality) !=
            std::bit_cast<std::uint64_t>(b[u].avg_quality) ||
        std::bit_cast<std::uint64_t>(a[u].avg_delay_ms) !=
            std::bit_cast<std::uint64_t>(b[u].avg_delay_ms) ||
        std::bit_cast<std::uint64_t>(a[u].variance) !=
            std::bit_cast<std::uint64_t>(b[u].variance) ||
        std::bit_cast<std::uint64_t>(a[u].fps) !=
            std::bit_cast<std::uint64_t>(b[u].fps)) {
      return fail("disabled workload pack changed user " + std::to_string(u) +
                  ": qoe " + show_double(a[u].avg_qoe) + " vs " +
                  show_double(b[u].avg_qoe));
    }
  }
  return pass();
}

}  // namespace

void register_builtin_properties(Registry& registry) {
  // --- core: allocator differential oracles -------------------------------
  CVR_PROPERTY_ITERS("core.dv_scan_heap_identical", 10000,
                     slot_problems(tie_heavy_config()),
                     check_scan_heap_identical);
  CVR_PROPERTY_ITERS("core.htable_matches_direct", 10000,
                     slot_problems(tie_heavy_config()),
                     check_htable_matches_direct);
  CVR_PROPERTY_ITERS("core.htable_simd_matches_scalar", 10000,
                     slot_problems(extreme_rates_config()),
                     check_htable_simd_matches_scalar);
  CVR_PROPERTY_ITERS("core.htable_incremental_matches_full", 10000,
                     slot_problems(tie_heavy_config()),
                     check_htable_incremental_matches_full);
  {
    SlotProblemGenConfig theorem = published_model_config();
    theorem.max_users = 6;
    CVR_PROPERTY_ITERS("core.dv_theorem1_half_approx", 10000,
                       slot_problems(theorem), check_theorem1);
    CVR_PROPERTY("core.dv_bounds_sandwich", slot_problems(theorem),
                 check_bounds_sandwich);
    CVR_PROPERTY("core.h_concave_published_model", slot_problems(theorem),
                 check_h_concave);
  }
  CVR_PROPERTY("core.dv_allocation_feasible",
               slot_problems(tie_heavy_config()), check_allocation_feasible);
  {
    SlotProblemGenConfig mixed;  // random tables + Section-VIII loss
    mixed.loss_aware_probability = 0.3;
    CVR_PROPERTY("core.dv_combined_best_of_passes", slot_problems(mixed),
                 check_combined_best_of_passes);
  }
  CVR_PROPERTY("core.qoe_accumulator_decomposition", qoe_traces(),
               check_qoe_accumulator);

  // --- util: Welford + RNG -------------------------------------------------
  CVR_PROPERTY("util.welford_matches_batch", sample_streams(),
               check_welford_batch);
  CVR_PROPERTY("util.welford_merge_consistent", sample_streams(),
               check_welford_merge);
  CVR_PROPERTY("util.rng_uniform_int_bounds", seeds(), check_rng_bounds);

  // --- net: M/M/1 delay model ---------------------------------------------
  CVR_PROPERTY("net.mm1_delay_monotone_convex",
               uniform_real(0.5, 300.0), check_mm1_shape);

  // --- faults: schedule generator -----------------------------------------
  CVR_PROPERTY("faults.schedule_deterministic", fault_schedule_configs(),
               check_fault_schedule_deterministic);
  CVR_PROPERTY("faults.schedule_queries_consistent", fault_schedule_configs(),
               check_fault_schedule_queries);
  CVR_PROPERTY("faults.fleet_events_appended", fault_schedule_configs(),
               check_fleet_events_appended);

  // --- workload pack: Wi-Fi / HEVC / probing (docs/workloads.md) -----------
  CVR_PROPERTY("net.wifi_airtime_shares", seeds(), check_wifi_airtime_shares);
  CVR_PROPERTY("net.wifi_backoff_deterministic", seeds(),
               check_wifi_backoff_deterministic);
  CVR_PROPERTY("content.hevc_gop_mean", seeds(), check_hevc_gop_mean);
  CVR_PROPERTY("net.probing_estimator_sane", seeds(),
               check_probing_estimator_sane);
  // Runs two full (small) SystemSims per iteration; a lean budget keeps
  // the default sweep fast while still varying users/slots/seeds.
  CVR_PROPERTY_ITERS("system.workload_defaults_inert", 40, seeds(),
                     check_workload_defaults_inert);

  // --- proto: wire codec ---------------------------------------------------
  CVR_PROPERTY("proto.roundtrip", wire_messages(), check_proto_roundtrip);
  CVR_PROPERTY_ITERS("proto.malformed_rejected", 4000, mutation_cases(),
                     check_proto_malformed);
  CVR_PROPERTY("proto.codec_primitive_roundtrip", seeds(),
               check_codec_primitives);
}

}  // namespace cvr::proptest
