// Domain generators + shrinkers + fixture printers for the harness.
//
// Everything the built-in properties (properties.cpp) generate lives
// here: per-slot allocation problems (with tie-heavy and loss-aware
// variants), user channels, fault-schedule configs, wire messages, and
// seeded single-byte corruption cases for the codec. Each type has
//
//   * a generator (pure function of cvr::Rng — see gen.h),
//   * a ShrinkTraits specialization proposing strictly simpler
//     instances (drop users, lower level ceilings, halve bandwidths),
//   * a FixtureTraits specialization printing a literal C++ fixture.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "src/core/allocator.h"
#include "src/faults/fault_schedule.h"
#include "src/proptest/fixture.h"
#include "src/proptest/gen.h"
#include "src/proptest/shrink.h"
#include "src/proto/messages.h"

namespace cvr::proptest {

// ---------------------------------------------------------------------------
// SlotProblem

/// Knobs for the SlotProblem generator. Defaults match the broad sweep
/// used by most allocator properties; the named presets below tighten
/// them for specific oracles.
struct SlotProblemGenConfig {
  std::size_t min_users = 1;
  std::size_t max_users = 8;
  /// Probability that a generated user is a byte-identical copy of an
  /// earlier user — identical marginal scores at every level, forcing
  /// exact argmax ties (the scan-vs-heap tie-break oracle needs them).
  double duplicate_user_probability = 0.0;
  /// Probability of quantizing all rates/bandwidths to a coarse 0.25
  /// grid, which makes exactly-on-the-cap budget boundaries common.
  double quantize_probability = 0.0;
  /// Probability of attaching a Section-VIII frame_loss table (may
  /// break h's concavity; keep 0 for properties that assume it).
  double loss_aware_probability = 0.0;
  /// Only build rate/delay tables analytically (CRF rate function +
  /// M/M/1 delay); required by the concavity property. When false,
  /// half the users get arbitrary strictly-increasing random tables.
  bool analytic_tables_only = false;
  /// Server budget = (sum of level-1 rates) * uniform[tight, roomy].
  double min_tightness = 0.9;
  double max_tightness = 3.5;
  /// Probability of rescaling a user's tables to the edges of the
  /// double range: rate axis by an exact power of two (2^-1000 or
  /// 2^600 — ordering preserved, densities pushed to ~2^±1000) and,
  /// half the time, delays into the DENORMAL range. The SIMD kernels
  /// must stay bit-identical to the scalar path even here.
  double extreme_rate_probability = 0.0;
};

/// Preset for the differential oracles that need an exact solver:
/// small N so BruteForceAllocator stays fast.
SlotProblemGenConfig small_exact_config();

/// Preset for the scan-vs-heap bit-identity sweep: duplicate users and
/// quantized rates to hammer score ties and budget boundaries.
SlotProblemGenConfig tie_heavy_config();

/// Preset for properties that assume the published (loss-oblivious,
/// analytic-table) model, e.g. discrete concavity of h.
SlotProblemGenConfig published_model_config();

/// Preset for the SIMD≡scalar bit-exactness sweep: user counts
/// covering every residue of the vector width (remainder lanes),
/// tie-heavy duplicates, and extreme/denormal-scaled tables.
SlotProblemGenConfig extreme_rates_config();

core::SlotProblem gen_slot_problem(cvr::Rng& rng,
                                   const SlotProblemGenConfig& config);

/// Generator form of gen_slot_problem for CVR_PROPERTY.
Gen<core::SlotProblem> slot_problems(SlotProblemGenConfig config = {});

template <>
struct ShrinkTraits<core::SlotProblem> {
  static std::vector<core::SlotProblem> candidates(
      const core::SlotProblem& problem);
};

template <>
struct FixtureTraits<core::SlotProblem> {
  static std::string show(const core::SlotProblem& problem);
};

// ---------------------------------------------------------------------------
// Fault schedules

Gen<faults::FaultScheduleConfig> fault_schedule_configs();

template <>
struct ShrinkTraits<faults::FaultScheduleConfig> {
  static std::vector<faults::FaultScheduleConfig> candidates(
      const faults::FaultScheduleConfig& config);
};

template <>
struct FixtureTraits<faults::FaultScheduleConfig> {
  static std::string show(const faults::FaultScheduleConfig& config);
};

// ---------------------------------------------------------------------------
// Wire messages

using WireMessage =
    std::variant<proto::PoseUpdate, proto::DeliveryAck, proto::ReleaseAck,
                 proto::TileHeader, proto::ConnectRequest,
                 proto::AdmitResponse, proto::DisconnectNotice,
                 proto::UserHandoff>;

WireMessage gen_wire_message(cvr::Rng& rng);
Gen<WireMessage> wire_messages();

/// Encodes whichever alternative the variant holds.
proto::Buffer encode_wire_message(const WireMessage& message);

template <>
struct ShrinkTraits<WireMessage> {
  static std::vector<WireMessage> candidates(const WireMessage& message);
};

template <>
struct FixtureTraits<WireMessage> {
  static std::string show(const WireMessage& message);
};

// ---------------------------------------------------------------------------
// Seeded malformed-bytes corpus

/// One corruption of a valid encoded frame. The mutation is sound for
/// a CRC32-framed codec: a single overwritten byte (an error burst of
/// <= 8 bits) is always detected, and truncation/appending violates
/// framing — so decode must throw; silently accepting the mutant frame
/// is a codec bug unless the mutation was a no-op.
struct MutationCase {
  enum class Op { kOverwriteByte, kTruncate, kAppend };

  WireMessage message;       ///< The valid message that was encoded.
  Op op = Op::kOverwriteByte;
  std::size_t position = 0;  ///< Byte index (overwrite) / new size (truncate).
  std::uint8_t value = 0;    ///< Overwrite/append byte value.

  /// The corrupted frame (encode + mutate).
  proto::Buffer mutated() const;
  /// True when the mutation leaves the frame byte-identical (e.g.
  /// overwriting a byte with its current value) — such cases are
  /// vacuously fine and the property skips them.
  bool is_noop() const;
};

MutationCase gen_mutation_case(cvr::Rng& rng);
Gen<MutationCase> mutation_cases();

template <>
struct ShrinkTraits<MutationCase> {
  static std::vector<MutationCase> candidates(const MutationCase& mutation);
};

template <>
struct FixtureTraits<MutationCase> {
  static std::string show(const MutationCase& mutation);
};

// ---------------------------------------------------------------------------
// Welford / QoE-accumulator sample streams

/// Samples spanning magnitudes (1e-6 .. 1e9, signed) plus a split point
/// for the merge property.
struct SampleStream {
  std::vector<double> samples;
  std::size_t split = 0;  ///< In [0, samples.size()].
};

Gen<SampleStream> sample_streams(std::size_t max_len = 300);

template <>
struct ShrinkTraits<SampleStream> {
  static std::vector<SampleStream> candidates(const SampleStream& stream);
};

template <>
struct FixtureTraits<SampleStream> {
  static std::string show(const SampleStream& stream);
};

/// One user's per-slot outcomes for the QoE-accumulator decomposition
/// property: chosen level, displayed quality (0 on a miss), delay.
struct QoeTrace {
  struct Step {
    int chosen = 1;
    double displayed = 0.0;
    double delay = 0.0;
  };
  std::vector<Step> steps;
};

Gen<QoeTrace> qoe_traces(std::size_t max_len = 200);

template <>
struct ShrinkTraits<QoeTrace> {
  static std::vector<QoeTrace> candidates(const QoeTrace& trace);
};

template <>
struct FixtureTraits<QoeTrace> {
  static std::string show(const QoeTrace& trace);
};

}  // namespace cvr::proptest
