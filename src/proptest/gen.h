// Generator combinators for the property-based testing harness.
//
// A Gen<T> is a deterministic recipe: given the harness's seeded
// cvr::Rng it produces one random instance of T. Generators compose —
// vector_of(uniform_real(0, 1), 1, 8) is a generator of small double
// vectors — and every instance is a pure function of the Rng stream,
// so a failing instance is reproducible from its seed alone (see
// property.h for how seeds are derived and reported).
//
// The combinators deliberately mirror QuickCheck/Hypothesis at the
// smallest useful surface: constant, uniform scalars, choice, vectors,
// map. Domain-specific generators (SlotProblem, fault schedules, wire
// messages) live in domain.h.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/util/rng.h"

namespace cvr::proptest {

template <typename T>
using Gen = std::function<T(cvr::Rng&)>;

/// Always produces `value`.
template <typename T>
Gen<T> constant(T value) {
  return [value](cvr::Rng&) { return value; };
}

/// Uniform double in [lo, hi).
inline Gen<double> uniform_real(double lo, double hi) {
  return [lo, hi](cvr::Rng& rng) { return rng.uniform(lo, hi); };
}

/// Uniform integer in [lo, hi] (inclusive).
inline Gen<std::int64_t> uniform_int(std::int64_t lo, std::int64_t hi) {
  return [lo, hi](cvr::Rng& rng) { return rng.uniform_int(lo, hi); };
}

/// Picks one of the given values uniformly. Requires non-empty choices.
template <typename T>
Gen<T> element_of(std::vector<T> choices) {
  return [choices = std::move(choices)](cvr::Rng& rng) {
    const auto index = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(choices.size()) - 1));
    return choices[index];
  };
}

/// Runs one of the given sub-generators, picked uniformly.
template <typename T>
Gen<T> one_of(std::vector<Gen<T>> alternatives) {
  return [alternatives = std::move(alternatives)](cvr::Rng& rng) {
    const auto index = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(alternatives.size()) - 1));
    return alternatives[index](rng);
  };
}

/// Vector with uniformly chosen size in [min_size, max_size], elements
/// drawn independently from `item`.
template <typename T>
Gen<std::vector<T>> vector_of(Gen<T> item, std::size_t min_size,
                              std::size_t max_size) {
  return [item = std::move(item), min_size, max_size](cvr::Rng& rng) {
    const auto size = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(min_size),
                        static_cast<std::int64_t>(max_size)));
    std::vector<T> out;
    out.reserve(size);
    for (std::size_t i = 0; i < size; ++i) out.push_back(item(rng));
    return out;
  };
}

/// Applies `f` to each generated value.
template <typename T, typename F>
auto map(Gen<T> gen, F f) -> Gen<decltype(f(std::declval<T>()))> {
  using U = decltype(f(std::declval<T>()));
  return Gen<U>([gen = std::move(gen), f = std::move(f)](cvr::Rng& rng) {
    return f(gen(rng));
  });
}

}  // namespace cvr::proptest
