#include "src/proptest/property.h"

#include <sstream>
#include <stdexcept>

namespace cvr::proptest {

Registry& Registry::instance() {
  static Registry* global = [] {
    auto* registry = new Registry();
    register_builtin_properties(*registry);
    return registry;
  }();
  return *global;
}

void Registry::add(std::unique_ptr<PropertyBase> property) {
  if (!property) {
    throw std::invalid_argument("Registry::add: null property");
  }
  if (find(property->name()) != nullptr) {
    throw std::invalid_argument("Registry::add: duplicate property name '" +
                                property->name() + "'");
  }
  properties_.push_back(std::move(property));
}

const PropertyBase* Registry::find(std::string_view name) const {
  for (const auto& property : properties_) {
    if (property->name() == name) return property.get();
  }
  return nullptr;
}

std::vector<CorpusEntry> parse_corpus(const std::string& text) {
  std::vector<CorpusEntry> entries;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    CorpusEntry entry;
    if (!(fields >> entry.property >> entry.seed)) {
      throw std::runtime_error("corpus line " + std::to_string(line_number) +
                               ": expected '<property> <seed>', got '" +
                               line + "'");
    }
    std::string extra;
    if (fields >> extra) {
      throw std::runtime_error("corpus line " + std::to_string(line_number) +
                               ": trailing tokens after seed");
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string format_failure(const RunResult& result) {
  if (result.ok()) return {};
  const Counterexample& ce = *result.counterexample;
  std::ostringstream out;
  out << "FAIL " << result.name << " seed=" << ce.seed
      << " iter=" << ce.iteration << "\n";
  out << "  note: " << ce.note << "\n";
  out << "  shrink: " << ce.shrink_steps << " step(s), "
      << ce.shrink_attempts << " attempt(s); minimal counterexample:\n";
  std::istringstream fixture(ce.fixture);
  std::string line;
  while (std::getline(fixture, line)) out << "    " << line << "\n";
  out << "  replay: proptest_runner --property=" << result.name
      << " --seed=" << ce.seed << " --iters=1\n";
  out << "CORPUS " << result.name << " " << ce.seed << "\n";
  return out.str();
}

}  // namespace cvr::proptest
