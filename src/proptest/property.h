// Property registry and run loop of the property-based testing harness.
//
// A property is (name, generator, check): for each iteration the
// harness derives an instance seed, generates an instance, and runs the
// check. On failure it shrinks the instance to a locally minimal
// counterexample (shrink.h) and reports
//
//   * the INSTANCE SEED — `proptest_runner --property=<name>
//     --seed=<seed> --iters=1` regenerates the exact failing instance,
//     because iteration i of a run with master seed S uses instance
//     seed S + i * kSeedStride and iteration 0 uses S itself;
//   * a literal C++ fixture of the minimal counterexample (fixture.h);
//   * a `CORPUS <property> <seed>` line, the format of the regression
//     corpus file (tests/proptest_corpus.txt) that CI replays on every
//     PR and appends to from nightly failures.
//
// Built-in properties are registered by register_builtin_properties()
// (properties.cpp) through the CVR_PROPERTY macro; the registry
// self-populates on first use. The harness is deterministic end to
// end: same seed, same iterations, same report — byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/proptest/fixture.h"
#include "src/proptest/gen.h"
#include "src/proptest/shrink.h"

namespace cvr::proptest {

/// Outcome of one check. `note` explains a failure (shown in the
/// report); it is empty on success.
struct CheckResult {
  bool ok = true;
  std::string note;
};

inline CheckResult pass() { return {true, {}}; }
inline CheckResult fail(std::string note) { return {false, std::move(note)}; }

/// Additive stride between consecutive instance seeds. Consecutive
/// seeds are decorrelated by the Rng's SplitMix64 expansion, and the
/// affine form keeps iteration 0's instance seed equal to the master
/// seed — which is what makes `--seed=<reported> --iters=1` an exact
/// replay.
inline constexpr std::uint64_t kSeedStride = 0x9E3779B97F4A7C15ull;

inline std::uint64_t instance_seed(std::uint64_t master_seed,
                                   std::uint64_t iteration) {
  return master_seed + iteration * kSeedStride;
}

/// A minimal failing instance plus everything needed to reproduce it.
struct Counterexample {
  std::uint64_t seed = 0;       ///< Instance seed (replay: --iters=1).
  std::uint64_t iteration = 0;  ///< Iteration within the failing run.
  std::string note;             ///< Check's note on the MINIMAL instance.
  std::string fixture;          ///< Literal C++ fixture of the minimum.
  std::size_t shrink_steps = 0;
  std::size_t shrink_attempts = 0;
};

struct RunResult {
  std::string name;
  std::uint64_t iterations = 0;
  std::optional<Counterexample> counterexample;

  bool ok() const { return !counterexample.has_value(); }
};

class PropertyBase {
 public:
  PropertyBase(std::string name, std::uint64_t default_iters)
      : name_(std::move(name)), default_iters_(default_iters) {}
  virtual ~PropertyBase() = default;

  const std::string& name() const { return name_; }
  /// Iteration count used when the caller does not override --iters;
  /// per-property so expensive oracles (brute force) can run fewer.
  std::uint64_t default_iters() const { return default_iters_; }

  /// Runs `iters` iterations from `master_seed` (0 means "use the
  /// property default"); stops at the first failure, shrunk.
  virtual RunResult run(std::uint64_t master_seed,
                        std::uint64_t iters = 0) const = 0;

 private:
  std::string name_;
  std::uint64_t default_iters_;
};

/// Concrete property over the instance type T produced by GenF.
/// CheckF may return CheckResult or bool; thrown std::exceptions count
/// as failures (and the shrinker treats "still throws" as "still
/// fails").
template <typename GenF, typename CheckF>
class Property final : public PropertyBase {
 public:
  using T = std::remove_cvref_t<std::invoke_result_t<GenF&, cvr::Rng&>>;

  Property(std::string name, std::uint64_t default_iters, GenF gen,
           CheckF check)
      : PropertyBase(std::move(name), default_iters),
        gen_(std::move(gen)),
        check_(std::move(check)) {}

  RunResult run(std::uint64_t master_seed,
                std::uint64_t iters = 0) const override {
    RunResult result;
    result.name = name();
    const std::uint64_t total = iters == 0 ? default_iters() : iters;
    for (std::uint64_t i = 0; i < total; ++i) {
      const std::uint64_t seed = instance_seed(master_seed, i);
      cvr::Rng rng(seed);
      T instance = gen_(rng);
      CheckResult check = checked(instance);
      ++result.iterations;
      if (check.ok) continue;

      const auto fails = [this](const T& candidate) {
        return !checked(candidate).ok;
      };
      ShrinkOutcome<T> shrunk = shrink_to_minimal(std::move(instance), fails);

      Counterexample ce;
      ce.seed = seed;
      ce.iteration = i;
      ce.note = checked(shrunk.minimal).note;
      ce.fixture = FixtureTraits<T>::show(shrunk.minimal);
      ce.shrink_steps = shrunk.steps;
      ce.shrink_attempts = shrunk.attempts;
      result.counterexample = std::move(ce);
      return result;
    }
    return result;
  }

 private:
  CheckResult checked(const T& instance) const {
    try {
      if constexpr (std::is_same_v<std::invoke_result_t<CheckF&, const T&>,
                                   bool>) {
        return check_(instance) ? pass() : fail("check returned false");
      } else {
        return check_(instance);
      }
    } catch (const std::exception& e) {
      return fail(std::string("unhandled exception: ") + e.what());
    }
  }

  GenF gen_;
  CheckF check_;
};

template <typename GenF, typename CheckF>
std::unique_ptr<PropertyBase> make_property(std::string name,
                                            std::uint64_t default_iters,
                                            GenF gen, CheckF check) {
  return std::make_unique<Property<GenF, CheckF>>(
      std::move(name), default_iters, std::move(gen), std::move(check));
}

/// All registered properties, in registration order (deterministic:
/// built-ins register from a single function, not static initializers,
/// so a static-library link can never drop them).
class Registry {
 public:
  /// The global registry, with built-ins registered on first use.
  static Registry& instance();

  /// An empty registry for harness self-tests.
  Registry() = default;

  void add(std::unique_ptr<PropertyBase> property);

  const std::vector<std::unique_ptr<PropertyBase>>& properties() const {
    return properties_;
  }

  /// Exact-name lookup; nullptr when absent.
  const PropertyBase* find(std::string_view name) const;

 private:
  std::vector<std::unique_ptr<PropertyBase>> properties_;
};

/// Registers every built-in property (properties.cpp). Idempotent only
/// on a fresh registry — Registry::instance() calls it exactly once.
void register_builtin_properties(Registry& registry);

/// One corpus entry: a property name and the instance seed to replay.
struct CorpusEntry {
  std::string property;
  std::uint64_t seed = 0;
};

/// Parses the regression-corpus format: one `<property> <seed>` pair
/// per line, `#` comments and blank lines ignored. Throws
/// std::runtime_error naming the offending line on malformed input.
std::vector<CorpusEntry> parse_corpus(const std::string& text);

/// Renders a failure report (multi-line, trailing newline) in the
/// format documented in docs/testing.md.
std::string format_failure(const RunResult& result);

// Registration macros for register_builtin_properties(): expect a
// `Registry& registry` in scope. CVR_PROPERTY uses the default
// iteration budget; CVR_PROPERTY_ITERS sets a per-property one.
inline constexpr std::uint64_t kDefaultIters = 2000;

#define CVR_PROPERTY(name, gen, check) \
  registry.add(::cvr::proptest::make_property( \
      name, ::cvr::proptest::kDefaultIters, (gen), (check)))

#define CVR_PROPERTY_ITERS(name, iters, gen, check) \
  registry.add(::cvr::proptest::make_property(name, (iters), (gen), (check)))

}  // namespace cvr::proptest
