// Standalone property runner.
//
//   proptest_runner                      # whole registry, default seed
//   proptest_runner --list               # enumerate properties
//   proptest_runner --seed=N             # whole registry from seed N
//   proptest_runner --property=NAME --seed=N --iters=1   # exact replay
//   proptest_runner --corpus=FILE        # replay a regression corpus
//
// Exit codes: 0 all properties passed, 1 at least one counterexample,
// 2 usage/corpus error. Failures print the format_failure() block,
// whose `CORPUS <property> <seed>` line is exactly the corpus-file
// format — CI appends those lines from nightly runs.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/proptest/property.h"
#include "src/util/flags.h"

namespace {

using cvr::proptest::CorpusEntry;
using cvr::proptest::PropertyBase;
using cvr::proptest::Registry;
using cvr::proptest::RunResult;

int run_corpus(const Registry& registry, const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "proptest_runner: cannot open corpus file '" << path
              << "'\n";
    return 2;
  }
  std::stringstream contents;
  contents << file.rdbuf();
  std::vector<CorpusEntry> entries;
  try {
    entries = cvr::proptest::parse_corpus(contents.str());
  } catch (const std::exception& e) {
    std::cerr << "proptest_runner: " << e.what() << "\n";
    return 2;
  }
  std::size_t failures = 0;
  for (const CorpusEntry& entry : entries) {
    const PropertyBase* property = registry.find(entry.property);
    if (property == nullptr) {
      std::cerr << "proptest_runner: corpus names unknown property '"
                << entry.property << "'\n";
      return 2;
    }
    const RunResult result = property->run(entry.seed, 1);
    if (result.ok()) {
      std::cout << "OK " << entry.property << " seed=" << entry.seed
                << " (corpus)\n";
    } else {
      ++failures;
      std::cout << cvr::proptest::format_failure(result);
    }
  }
  std::cout << "proptest: " << entries.size() << " corpus entr"
            << (entries.size() == 1 ? "y" : "ies") << ", " << failures
            << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  std::int64_t seed = 1;
  std::int64_t iters = 0;
  std::string property_filter;
  std::string corpus_path;

  cvr::FlagParser flags;
  flags.add("list", &list, "list registered properties and exit");
  flags.add("seed", &seed, "master seed (iteration 0 replays it exactly)");
  flags.add("iters", &iters,
            "iterations per property (0 = per-property default)");
  flags.add("property", &property_filter,
            "run only this property (exact name, else substring filter)");
  flags.add("corpus", &corpus_path,
            "replay a '<property> <seed>' regression-corpus file and exit");

  if (!flags.parse(argc, argv) || !flags.positionals().empty()) {
    for (const std::string& error : flags.errors()) {
      std::cerr << "proptest_runner: " << error << "\n";
    }
    if (!flags.positionals().empty()) {
      std::cerr << "proptest_runner: unexpected positional argument '"
                << flags.positionals().front() << "'\n";
    }
    std::cerr << flags.usage("proptest_runner");
    return 2;
  }
  if (seed < 0 || iters < 0) {
    std::cerr << "proptest_runner: --seed and --iters must be >= 0\n";
    return 2;
  }

  const Registry& registry = Registry::instance();

  if (list) {
    for (const auto& property : registry.properties()) {
      std::cout << property->name() << " (default iters "
                << property->default_iters() << ")\n";
    }
    return 0;
  }
  if (!corpus_path.empty()) return run_corpus(registry, corpus_path);

  std::vector<const PropertyBase*> selected;
  if (property_filter.empty()) {
    for (const auto& property : registry.properties()) {
      selected.push_back(property.get());
    }
  } else if (const PropertyBase* exact = registry.find(property_filter)) {
    selected.push_back(exact);
  } else {
    for (const auto& property : registry.properties()) {
      if (property->name().find(property_filter) != std::string::npos) {
        selected.push_back(property.get());
      }
    }
    if (selected.empty()) {
      std::cerr << "proptest_runner: no property matches '" << property_filter
                << "' (see --list)\n";
      return 2;
    }
  }

  std::size_t failures = 0;
  for (const PropertyBase* property : selected) {
    const RunResult result =
        property->run(static_cast<std::uint64_t>(seed),
                      static_cast<std::uint64_t>(iters));
    if (result.ok()) {
      std::cout << "OK " << property->name() << " iters=" << result.iterations
                << "\n";
    } else {
      ++failures;
      std::cout << cvr::proptest::format_failure(result);
    }
  }
  std::cout << "proptest: " << selected.size() << " propert"
            << (selected.size() == 1 ? "y" : "ies") << ", " << failures
            << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}
