#include "src/telemetry/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace cvr::telemetry {

namespace {

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread cache: registry uid -> that thread's shard. Shards are owned
/// by the registry (so a worker's tallies survive its exit); the cache
/// only holds raw pointers, and uids are process-unique, so a stale
/// entry for a destroyed registry can never alias a live one.
thread_local std::unordered_map<std::uint64_t, void*> tls_shards;

void atomic_double_add(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_double_min(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected && !target.compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

void atomic_double_max(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected && !target.compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramData::mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HistogramData::quantile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested sample (0-based, continuous).
  const double rank = p * static_cast<double>(count - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += counts[b];
    const double hi_rank = static_cast<double>(seen - 1);
    if (rank > hi_rank) continue;
    // Bucket bounds: underflow starts at min, overflow ends at max; the
    // first/last *used* bounds are tightened by the exact min/max too.
    double lo = b == 0 ? min : edges[b - 1];
    double hi = b == counts.size() - 1 ? max : edges[b];
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi < lo) hi = lo;
    if (hi_rank == lo_rank) return lo;
    const double frac = (rank - lo_rank) / (hi_rank - lo_rank + 1.0);
    return lo + frac * (hi - lo);
  }
  return max;
}

std::uint64_t MetricsSnapshot::counter_or(const std::string& name,
                                          std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

std::vector<double> exponential_edges(double first, double factor,
                                      std::size_t count) {
  if (!(first > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument(
        "exponential_edges: need first > 0, factor > 1, count >= 1");
  }
  std::vector<double> edges;
  edges.reserve(count);
  double edge = first;
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return edges;
}

MetricsRegistry::MetricsRegistry() : uid_(next_registry_uid()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::CounterId MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return it->second;
  const CounterId id = counter_names_.size();
  counter_ids_.emplace(name, id);
  counter_names_.push_back(name);
  return id;
}

MetricsRegistry::HistogramId MetricsRegistry::histogram(
    const std::string& name, std::vector<double> edges) {
  if (edges.empty()) {
    throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                "' needs at least one bucket edge");
  }
  for (std::size_t i = 1; i < edges.size(); ++i) {
    if (!(edges[i - 1] < edges[i])) {
      throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                  "' edges must be strictly ascending");
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histogram_ids_.find(name);
  if (it != histogram_ids_.end()) return it->second;
  const HistogramId id = histogram_names_.size();
  histogram_ids_.emplace(name, id);
  histogram_names_.push_back(name);
  histogram_edges_.push_back(
      std::make_unique<const std::vector<double>>(std::move(edges)));
  return id;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  void*& slot = tls_shards[uid_];
  if (slot == nullptr) {
    auto shard = std::make_unique<Shard>();
    std::lock_guard<std::mutex> lock(mutex_);
    shard->counters = std::vector<std::atomic<std::uint64_t>>(
        counter_names_.size());
    shard->hists.reserve(histogram_edges_.size());
    for (const auto& edges : histogram_edges_) {
      shard->hists.push_back(std::make_unique<HistShard>(edges.get()));
    }
    slot = shard.get();
    shards_.push_back(std::move(shard));
  }
  return *static_cast<Shard*>(slot);
}

void MetricsRegistry::sync_shard(Shard& shard) {
  // Late registration: grow this thread's shard to the current metric
  // set. Under the mutex so snapshot() never reads a vector mid-resize;
  // only the owning thread writes the slots themselves.
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard.counters.size() < counter_names_.size()) {
    std::vector<std::atomic<std::uint64_t>> grown(counter_names_.size());
    for (std::size_t i = 0; i < shard.counters.size(); ++i) {
      grown[i].store(shard.counters[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    shard.counters = std::move(grown);
  }
  while (shard.hists.size() < histogram_edges_.size()) {
    shard.hists.push_back(
        std::make_unique<HistShard>(histogram_edges_[shard.hists.size()].get()));
  }
}

void MetricsRegistry::add(CounterId id, std::uint64_t delta) {
  Shard& shard = local_shard();
  if (id >= shard.counters.size()) sync_shard(shard);
  shard.counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::record(HistogramId id, double value) {
  Shard& shard = local_shard();
  if (id >= shard.hists.size()) sync_shard(shard);
  HistShard& hist = *shard.hists[id];
  const std::vector<double>& edges = *hist.edges;
  // Bucket index: first edge strictly greater than value; the overflow
  // bucket catches value >= last edge.
  const auto it = std::upper_bound(edges.begin(), edges.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - edges.begin());
  hist.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prior =
      hist.count.fetch_add(1, std::memory_order_relaxed);
  atomic_double_add(hist.sum, value);
  if (prior == 0) {
    // First sample of this shard: seed min/max (the zero defaults would
    // otherwise clamp all-positive samples).
    hist.min.store(value, std::memory_order_relaxed);
    hist.max.store(value, std::memory_order_relaxed);
  } else {
    atomic_double_min(hist.min, value);
    atomic_double_max(hist.max, value);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (std::size_t id = 0; id < counter_names_.size(); ++id) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      if (id < shard->counters.size()) {
        total += shard->counters[id].load(std::memory_order_relaxed);
      }
    }
    snap.counters.emplace(counter_names_[id], total);
  }
  for (std::size_t id = 0; id < histogram_names_.size(); ++id) {
    HistogramData data;
    data.edges = *histogram_edges_[id];
    data.counts.assign(data.edges.size() + 1, 0);
    bool first = true;
    for (const auto& shard : shards_) {
      if (id >= shard->hists.size()) continue;
      const HistShard& hist = *shard->hists[id];
      const std::uint64_t n = hist.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      for (std::size_t b = 0; b < data.counts.size(); ++b) {
        data.counts[b] += hist.buckets[b].load(std::memory_order_relaxed);
      }
      data.count += n;
      data.sum += hist.sum.load(std::memory_order_relaxed);
      const double lo = hist.min.load(std::memory_order_relaxed);
      const double hi = hist.max.load(std::memory_order_relaxed);
      data.min = first ? lo : std::min(data.min, lo);
      data.max = first ? hi : std::max(data.max, hi);
      first = false;
    }
    snap.histograms.emplace(histogram_names_[id], std::move(data));
  }
  return snap;
}

}  // namespace cvr::telemetry
