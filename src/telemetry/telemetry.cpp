#include "src/telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace cvr::telemetry {

namespace {

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

std::string json_string(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Mode parse_mode(const std::string& text) {
  if (text == "off") return Mode::kOff;
  if (text == "counters") return Mode::kCounters;
  if (text == "trace") return Mode::kTrace;
  throw std::invalid_argument("telemetry: unknown mode '" + text +
                              "' (expected off, counters, or trace)");
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kCounters:
      return "counters";
    case Mode::kTrace:
      return "trace";
  }
  return "off";
}

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSlot:
      return "slot";
    case Phase::kPoseIngest:
      return "pose_ingest";
    case Phase::kPredict:
      return "predict";
    case Phase::kProblemBuild:
      return "problem_build";
    case Phase::kAllocSolve:
      return "alloc_solve";
    case Phase::kContentFetch:
      return "content_fetch";
    case Phase::kTransport:
      return "transport";
    case Phase::kDecode:
      return "decode";
    case Phase::kFeedback:
      return "feedback";
    case Phase::kRealize:
      return "realize";
    case Phase::kAdmission:
      return "admission";
  }
  return "unknown";
}

const char* counter_name(Counter counter) {
  switch (counter) {
    case Counter::kSlots:
      return "slots_processed";
    case Counter::kAllocInvocations:
      return "alloc_invocations";
    case Counter::kAllocIterations:
      return "alloc_iterations";
    case Counter::kPoseUploads:
      return "pose_uploads";
    case Counter::kTilesRequested:
      return "tiles_requested";
    case Counter::kPacketsSent:
      return "packets_sent";
    case Counter::kPacketsLost:
      return "packets_lost";
    case Counter::kCoverageHits:
      return "coverage_hits";
    case Counter::kFramesOnTime:
      return "frames_on_time";
    case Counter::kSessionsOffered:
      return "svc_offered_sessions";
    case Counter::kSessionsAdmitted:
      return "svc_admitted";
    case Counter::kSessionsDegraded:
      return "svc_degraded";
    case Counter::kSessionsRejected:
      return "svc_rejected";
    case Counter::kDeadlineMisses:
      return "svc_deadline_misses";
    case Counter::kFleetServerCrashes:
      return "fleet_server_crashes";
    case Counter::kFleetMigrations:
      return "fleet_migrations";
    case Counter::kFleetHandoffFrames:
      return "fleet_handoff_frames";
    case Counter::kFleetRetryAttempts:
      return "fleet_retry_attempts";
    case Counter::kFleetMigrationRejects:
      return "fleet_migration_rejects";
    case Counter::kFleetOrphanUserSlots:
      return "fleet_orphan_user_slots";
  }
  return "unknown";
}

std::vector<double> default_duration_edges_us() {
  return exponential_edges(0.25, 1.5, 48);
}

std::string phase_histogram_name(Phase phase) {
  return std::string("phase_") + phase_name(phase) + "_us";
}

Collector::Collector(Mode mode, MetricsRegistry* registry, TraceBuffer* trace)
    : mode_(mode),
      registry_(mode == Mode::kOff ? nullptr : registry),
      trace_(mode == Mode::kTrace ? trace : nullptr),
      epoch_(std::chrono::steady_clock::now()) {
  if (mode_ != Mode::kOff && registry_ == nullptr) {
    throw std::invalid_argument("telemetry::Collector: mode '" +
                                std::string(mode_name(mode_)) +
                                "' requires a MetricsRegistry");
  }
  if (registry_ == nullptr) return;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    phase_hist_[p] = registry_->histogram(
        phase_histogram_name(static_cast<Phase>(p)),
        default_duration_edges_us());
  }
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    counter_ids_[c] = registry_->counter(counter_name(static_cast<Counter>(c)));
  }
}

void Collector::count(Counter counter, std::uint64_t delta) {
  if (registry_ == nullptr || delta == 0) return;
  registry_->add(counter_ids_[static_cast<std::size_t>(counter)], delta);
}

void Collector::count_allocation(const std::vector<int>& levels) {
  if (registry_ == nullptr) return;
  std::uint64_t raises = 0;
  for (const int level : levels) {
    if (level > 1) raises += static_cast<std::uint64_t>(level - 1);
  }
  count(Counter::kAllocInvocations, 1);
  count(Counter::kAllocIterations, raises);
}

void Collector::label_process(std::uint32_t pid, const std::string& name) {
  if (tracing()) trace_->set_process_name(pid, name);
}

double Collector::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

PhaseSpan::PhaseSpan(Collector* collector, Phase phase, std::uint32_t pid,
                     std::int64_t slot)
    : collector_(collector != nullptr && collector->counting() ? collector
                                                               : nullptr),
      phase_(phase),
      pid_(pid),
      slot_(slot) {
  if (collector_ != nullptr) start_us_ = collector_->now_us();
}

PhaseSpan::~PhaseSpan() {
  if (collector_ == nullptr) return;
  const double end_us = collector_->now_us();
  const double dur_us = end_us - start_us_;
  collector_->registry_->record(
      collector_->phase_hist_[static_cast<std::size_t>(phase_)], dur_us);
  if (collector_->tracing()) {
    TraceEvent event;
    event.pid = pid_;
    event.tid = static_cast<std::uint32_t>(phase_);
    event.name = phase_name(phase_);
    event.ts_us = start_us_;
    event.dur_us = dur_us;
    event.slot = slot_;
    collector_->trace_->set_thread_name(pid_, event.tid, event.name);
    collector_->trace_->add(std::move(event));
  }
}

ScopedTimer::ScopedTimer(MetricsRegistry* registry,
                         MetricsRegistry::HistogramId id)
    : registry_(registry), id_(id), start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  if (registry_ == nullptr) return;
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  registry_->record(id_, us);
}

ArmPerf summarize_arm(const std::string& algorithm,
                      const MetricsSnapshot& snapshot, double wall_ms_total) {
  ArmPerf arm;
  arm.algorithm = algorithm;
  arm.snapshot = snapshot;
  arm.wall_ms_total = wall_ms_total;
  arm.slots = snapshot.counter_or(counter_name(Counter::kSlots));
  arm.alloc_invocations =
      snapshot.counter_or(counter_name(Counter::kAllocInvocations));
  arm.alloc_iterations =
      snapshot.counter_or(counter_name(Counter::kAllocIterations));
  if (wall_ms_total > 0.0) {
    arm.slots_per_sec =
        static_cast<double>(arm.slots) / (wall_ms_total / 1000.0);
  }
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    const auto it = snapshot.histograms.find(phase_histogram_name(phase));
    if (it == snapshot.histograms.end() || it->second.count == 0) continue;
    const HistogramData& hist = it->second;
    PhasePerf perf;
    perf.phase = phase_name(phase);
    perf.count = hist.count;
    perf.p50_us = hist.quantile(0.50);
    perf.p95_us = hist.quantile(0.95);
    perf.p99_us = hist.quantile(0.99);
    perf.mean_us = hist.mean();
    perf.total_ms = hist.sum / 1000.0;
    arm.phases.push_back(std::move(perf));
  }
  return arm;
}

std::string perf_report_json(const PerfReport& report, const std::string& bench,
                             const std::string& machine) {
  std::string out = "{\n";
  out += "  \"schema\": \"cvr-bench-perf-v1\",\n";
  out += "  \"bench\": " + json_string(bench) + ",\n";
  out += "  \"mode\": " + json_string(mode_name(report.mode)) + ",\n";
  if (!machine.empty()) {
    out += "  \"machine\": " + json_string(machine) + ",\n";
  }
  out += "  \"arms\": [\n";
  for (std::size_t a = 0; a < report.arms.size(); ++a) {
    const ArmPerf& arm = report.arms[a];
    out += "    {\n";
    out += "      \"algorithm\": " + json_string(arm.algorithm) + ",\n";
    out += "      \"slots\": " + std::to_string(arm.slots) + ",\n";
    out += "      \"wall_ms_total\": " + json_number(arm.wall_ms_total) + ",\n";
    out += "      \"slots_per_sec\": " + json_number(arm.slots_per_sec) + ",\n";
    out += "      \"alloc_invocations\": " +
           std::to_string(arm.alloc_invocations) + ",\n";
    out += "      \"alloc_iterations\": " +
           std::to_string(arm.alloc_iterations) + ",\n";
    out += "      \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : arm.snapshot.counters) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "        " + json_string(name) + ": " + std::to_string(value);
    }
    out += first ? "},\n" : "\n      },\n";
    out += "      \"phases\": [";
    for (std::size_t p = 0; p < arm.phases.size(); ++p) {
      const PhasePerf& perf = arm.phases[p];
      out += p == 0 ? "\n" : ",\n";
      out += "        {\"phase\": " + json_string(perf.phase) +
             ", \"count\": " + std::to_string(perf.count) +
             ", \"p50_us\": " + json_number(perf.p50_us) +
             ", \"p95_us\": " + json_number(perf.p95_us) +
             ", \"p99_us\": " + json_number(perf.p99_us) +
             ", \"mean_us\": " + json_number(perf.mean_us) +
             ", \"total_ms\": " + json_number(perf.total_ms) + "}";
    }
    out += arm.phases.empty() ? "]\n" : "\n      ]\n";
    out += a + 1 == report.arms.size() ? "    }\n" : "    },\n";
  }
  out += "  ]\n}\n";
  return out;
}

void write_perf_json(const std::string& path, const PerfReport& report,
                     const std::string& bench, const std::string& machine) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("telemetry: cannot open '" + path +
                             "' for writing");
  }
  file << perf_report_json(report, bench, machine);
  if (!file) {
    throw std::runtime_error("telemetry: write to '" + path + "' failed");
  }
}

}  // namespace cvr::telemetry
