// MetricsRegistry: named counters and fixed-bucket histograms with
// lock-free per-thread shards.
//
// Design constraints (docs/observability.md):
//   * recording must never serialize the ensemble's worker threads —
//     each thread writes to its own shard (plain relaxed atomics, no
//     CAS loops on the hot path except min/max), so a parallel run's
//     counter totals merge to exactly the serial totals;
//   * recording must never perturb simulation results — the registry
//     holds measurement metadata only, like sim::ArmResult::run_wall_ms;
//   * snapshot() is the one synchronization point: it locks the shard
//     list and merges every shard into plain value types the report
//     sinks can serialize.
//
// Registration contract: register every metric (counter()/histogram())
// before the first add()/record() on any thread. Late registration is
// supported — a shard that predates the metric grows on demand under
// the registry mutex — but the grow path is slow, so hot loops should
// pre-register.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cvr::telemetry {

/// Merged view of one histogram: fixed bucket edges plus per-bucket
/// counts, with exact count/sum/min/max kept alongside so quantiles can
/// interpolate inside the under/overflow buckets.
struct HistogramData {
  /// Ascending bucket edges e_0 < ... < e_{k-1}. Bucket i (for
  /// 0 < i < k) covers [e_{i-1}, e_i); bucket 0 is the underflow
  /// (-inf, e_0) and bucket k the overflow [e_{k-1}, +inf), so
  /// counts.size() == edges.size() + 1.
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningless when count == 0.
  double max = 0.0;  ///< Meaningless when count == 0.

  double mean() const;
  /// Inverse CDF estimate for p in [0, 1]: finds the bucket holding the
  /// p-th sample and interpolates linearly between its bounds (the
  /// underflow bucket interpolates from `min`, the overflow bucket up
  /// to `max`). Returns 0 when empty.
  double quantile(double p) const;
};

/// One merged snapshot of a registry, keyed by metric name. Plain data:
/// safe to copy, serialize, or compare after the run.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramData> histograms;

  std::uint64_t counter_or(const std::string& name,
                           std::uint64_t fallback = 0) const;
};

/// `count` geometrically spaced edges starting at `first` with ratio
/// `factor` — the default layout for duration histograms (microseconds).
std::vector<double> exponential_edges(double first, double factor,
                                      std::size_t count);

class MetricsRegistry {
 public:
  using CounterId = std::size_t;
  using HistogramId = std::size_t;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or looks up) a counter by name. Idempotent: the same
  /// name always maps to the same id.
  CounterId counter(const std::string& name);

  /// Registers (or looks up) a histogram. `edges` must be strictly
  /// ascending and non-empty (throws std::invalid_argument otherwise);
  /// re-registering an existing name ignores `edges` and returns the
  /// original id.
  HistogramId histogram(const std::string& name, std::vector<double> edges);

  /// Adds `delta` to the calling thread's shard of the counter.
  /// Lock-free after the thread's shard covers the id.
  void add(CounterId id, std::uint64_t delta = 1);

  /// Records one sample into the calling thread's shard of the
  /// histogram. Lock-free after the thread's shard covers the id.
  void record(HistogramId id, double value);

  /// Merges every thread's shard into one snapshot. Safe to call while
  /// other threads keep recording (their writes are relaxed atomics);
  /// for exact totals call it after joining the writers, as
  /// experiments::run_ensemble does.
  MetricsSnapshot snapshot() const;

 private:
  struct HistShard {
    /// Stable heap-allocated edge list owned by the registry, so the
    /// lock-free record path never touches a registry vector that a
    /// concurrent late registration could reallocate.
    const std::vector<double>* edges;
    std::vector<std::atomic<std::uint64_t>> buckets;  // edges->size() + 1
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};

    explicit HistShard(const std::vector<double>* e)
        : edges(e), buckets(e->size() + 1) {}
  };
  struct Shard {
    std::vector<std::atomic<std::uint64_t>> counters;
    std::vector<std::unique_ptr<HistShard>> hists;
  };

  Shard& local_shard();
  void sync_shard(Shard& shard);  // grows `shard` to the registered sizes

  const std::uint64_t uid_;  ///< Process-unique; keys the thread cache.
  mutable std::mutex mutex_;
  std::map<std::string, CounterId> counter_ids_;
  std::map<std::string, HistogramId> histogram_ids_;
  std::vector<std::string> counter_names_;    // by id
  std::vector<std::string> histogram_names_;  // by id
  /// Edge lists by id; unique_ptr keeps each list at a stable address
  /// across registrations (HistShard::edges points into these).
  std::vector<std::unique_ptr<const std::vector<double>>> histogram_edges_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cvr::telemetry
