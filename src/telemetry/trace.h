// Chrome trace-event capture: per-run buffers of complete ("ph":"X")
// spans serialized as chrome://tracing / Perfetto JSON.
//
// Convention (docs/observability.md): within one run, pid identifies
// the actor — pid 0 is the server/slot track, pid u+1 is user u — and
// tid identifies the pipeline phase, so the trace viewer shows one
// process per user with one track per phase. When an ensemble merges
// the traces of several arms, each arm's pids are shifted by a fixed
// offset and its process names prefixed with the algorithm
// (TraceBuffer::append), keeping every (arm, user) pair a distinct
// process in the viewer.
//
// The buffer is intentionally single-writer: one run (one ensemble
// cell) owns one TraceBuffer; merging happens after the cells join.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace cvr::telemetry {

/// One complete span. Timestamps are microseconds relative to the
/// owning collector's epoch (the run start).
struct TraceEvent {
  std::uint32_t pid = 0;     ///< Actor: 0 = server, u+1 = user u.
  std::uint32_t tid = 0;     ///< Track within the actor (the phase).
  std::string name;          ///< Span label (the phase name).
  double ts_us = 0.0;        ///< Start, microseconds from the epoch.
  double dur_us = 0.0;       ///< Duration, microseconds.
  std::int64_t slot = -1;    ///< Slot index carried into args (-1 = none).
};

class TraceBuffer {
 public:
  /// Labels a pid (emitted as a process_name metadata event). Last
  /// write wins; labelling is idempotent.
  void set_process_name(std::uint32_t pid, const std::string& name);

  /// Labels a (pid, tid) track (emitted as a thread_name metadata event).
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       const std::string& name);

  void add(TraceEvent event);

  /// Appends another buffer with every pid shifted by `pid_offset` and
  /// process names prefixed "`process_prefix`/" — how run_ensemble
  /// folds per-arm captures into one viewable file.
  void append(const TraceBuffer& other, std::uint32_t pid_offset,
              const std::string& process_prefix);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Serializes to Chrome trace JSON (object form with a "traceEvents"
  /// array, loadable by chrome://tracing and Perfetto). Deterministic
  /// for identical buffer contents: metadata events in pid/tid order,
  /// span events in insertion order, fixed float formatting.
  std::string to_json() const;

  /// Writes to_json() to `path`; throws std::runtime_error on I/O error.
  void write(const std::string& path) const;

 private:
  std::map<std::uint32_t, std::string> process_names_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names_;
  std::vector<TraceEvent> events_;
};

}  // namespace cvr::telemetry
