// Observability layer: phase-level timing, counters, and perf baselines
// for the two evaluation platforms.
//
// Three modes (EnsembleSpec::telemetry, docs/observability.md):
//   * kOff      — every hook is a null-pointer check; the platforms run
//                 byte-identical to a build without the subsystem;
//   * kCounters — counters and per-phase duration histograms into a
//                 MetricsRegistry (lock-free per-thread shards);
//   * kTrace    — kCounters plus per-span events into a TraceBuffer,
//                 exported as chrome://tracing / Perfetto JSON.
//
// Determinism contract: telemetry reads clocks and writes to its own
// sinks, never into simulation state — enabling any mode changes no
// sim::UserOutcome bit (enforced by tests/telemetry_test.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace cvr::telemetry {

enum class Mode {
  kOff,       ///< No collection; hooks compile to a null check.
  kCounters,  ///< Counters + duration histograms.
  kTrace,     ///< kCounters + Chrome trace events.
};

/// Parses "off" / "counters" / "trace" (the bench `--telemetry` flag).
/// Throws std::invalid_argument on anything else, naming the value.
Mode parse_mode(const std::string& text);
const char* mode_name(Mode mode);

/// The per-slot pipeline phases both platforms instrument. Histogram
/// names are "phase_<name>_us"; docs/observability.md carries the
/// catalogue of which platform emits which phase.
enum class Phase : std::uint8_t {
  kSlot,          ///< Whole slot, server track (slots/sec comes from here).
  kPoseIngest,    ///< System: pose upload decode + server ingest.
  kPredict,       ///< Trace: per-user pose extrapolation.
  kProblemBuild,  ///< Slot-problem assembly from state/estimates.
  kAllocSolve,    ///< The allocator under test (Algorithm 1 vs baselines).
  kContentFetch,  ///< System: tile lookup/request build (+ render farm).
  kTransport,     ///< System: router service + RTP transmission.
  kDecode,        ///< System: client decode + display deadline check.
  kFeedback,      ///< System: ACK decode + estimator updates.
  kRealize,       ///< Trace: outcome realization + QoE bookkeeping.
  kAdmission,     ///< Load service: connect decode + admission decision.
};
inline constexpr std::size_t kPhaseCount = 11;
const char* phase_name(Phase phase);

/// Counters both platforms maintain (registered by every Collector up
/// front, so incrementing never touches the registry mutex; the name
/// catalogue lives in docs/observability.md).
enum class Counter : std::uint8_t {
  kSlots,            ///< "slots_processed"
  kAllocInvocations,  ///< "alloc_invocations"
  kAllocIterations,  ///< "alloc_iterations"
  kPoseUploads,      ///< "pose_uploads" (system)
  kTilesRequested,   ///< "tiles_requested" (system)
  kPacketsSent,      ///< "packets_sent" (system)
  kPacketsLost,      ///< "packets_lost" (system)
  kCoverageHits,     ///< "coverage_hits"
  kFramesOnTime,     ///< "frames_on_time" (system)
  // Load-service counters (system::LoadServer). The svc_ prefix marks
  // them as *deterministic service outcomes* — derived from the seeded
  // simulation, never from wall clocks — so scripts/perf_gate.py can
  // require bit-exact agreement with the committed baseline
  // (--service-prefix svc_), independent of machine speed.
  kSessionsOffered,   ///< "svc_offered_sessions" (load service)
  kSessionsAdmitted,  ///< "svc_admitted" (load service)
  kSessionsDegraded,  ///< "svc_degraded" (load service)
  kSessionsRejected,  ///< "svc_rejected" (load service)
  kDeadlineMisses,    ///< "svc_deadline_misses" (load service)
  // Fleet controller counters (fleet::FleetSim). Deterministic products
  // of (config, seed) like the svc_ family: the fleet perf gate runs
  // perf_gate.py --service-prefix fleet_ for bit-exact agreement.
  kFleetServerCrashes,    ///< "fleet_server_crashes"
  kFleetMigrations,       ///< "fleet_migrations"
  kFleetHandoffFrames,    ///< "fleet_handoff_frames"
  kFleetRetryAttempts,    ///< "fleet_retry_attempts"
  kFleetMigrationRejects, ///< "fleet_migration_rejects"
  kFleetOrphanUserSlots,  ///< "fleet_orphan_user_slots"
};
inline constexpr std::size_t kCounterCount = 20;
const char* counter_name(Counter counter);

class PhaseSpan;

/// Per-run collection handle: one Collector per platform run (one
/// ensemble cell), pointing at the arm's shared MetricsRegistry and —
/// in kTrace mode — at a TraceBuffer owned by that run alone. Cheap to
/// construct; pre-registers every phase histogram and counter so the
/// hot path never takes the registry mutex.
class Collector {
 public:
  /// pid convention for spans and trace processes.
  static constexpr std::uint32_t kServerPid = 0;
  static std::uint32_t user_pid(std::size_t user) {
    return static_cast<std::uint32_t>(user + 1);
  }

  /// `registry` must outlive the collector and be non-null unless
  /// `mode` is kOff; `trace` may be null in any mode below kTrace.
  Collector(Mode mode, MetricsRegistry* registry, TraceBuffer* trace = nullptr);

  Mode mode() const { return mode_; }
  bool counting() const { return mode_ != Mode::kOff; }
  bool tracing() const { return mode_ == Mode::kTrace && trace_ != nullptr; }

  /// Adds to a standard counter (no-op when kOff; lock-free — ids are
  /// cached at construction).
  void count(Counter counter, std::uint64_t delta = 1);

  /// Convenience: alloc_invocations + alloc_iterations from an
  /// allocation's accepted level-raises (sum of levels above the
  /// all-ones base — the accepted ascent steps of Algorithm 1).
  void count_allocation(const std::vector<int>& levels);

  /// Labels a trace process (no-op unless tracing).
  void label_process(std::uint32_t pid, const std::string& name);

  MetricsRegistry* registry() const { return registry_; }
  TraceBuffer* trace() const { return trace_; }

  /// Microseconds since this collector's epoch (construction time).
  double now_us() const;

 private:
  friend class PhaseSpan;

  Mode mode_;
  MetricsRegistry* registry_;
  TraceBuffer* trace_;
  std::chrono::steady_clock::time_point epoch_;
  MetricsRegistry::HistogramId phase_hist_[kPhaseCount] = {};
  MetricsRegistry::CounterId counter_ids_[kCounterCount] = {};
};

/// RAII phase timer (the ScopedTimer/TraceSpan of the design docs): on
/// destruction records the elapsed microseconds into the phase
/// histogram and — when tracing — emits one complete trace event on
/// (pid, tid = phase). A null collector (or kOff) makes construction
/// and destruction a branch each, so instrumentation can stay in place
/// unconditionally.
class PhaseSpan {
 public:
  PhaseSpan(Collector* collector, Phase phase, std::uint32_t pid,
            std::int64_t slot = -1);
  ~PhaseSpan();

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  Collector* collector_;
  Phase phase_;
  std::uint32_t pid_;
  std::int64_t slot_;
  double start_us_ = 0.0;
};

/// ScopedTimer: times an arbitrary named histogram in a registry —
/// the standalone building block micro benches use (PhaseSpan is the
/// platform-phase specialization).
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, MetricsRegistry::HistogramId id);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  MetricsRegistry::HistogramId id_;
  std::chrono::steady_clock::time_point start_;
};

/// Default duration-histogram layout: 48 geometric edges from 0.25 us
/// with ratio 1.5 (~0.25 us .. ~44 s), shared by every phase histogram
/// so BENCH_*.json percentiles are comparable across phases.
std::vector<double> default_duration_edges_us();

/// The histogram name a phase records under.
std::string phase_histogram_name(Phase phase);

// ---------------------------------------------------------------------------
// Perf report: the machine-readable baseline (BENCH_<name>.json and
// <prefix>_perf.csv via report::write_perf_csv).

/// One phase's duration summary within one arm.
struct PhasePerf {
  std::string phase;  ///< phase_name() string.
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double total_ms = 0.0;
};

/// One arm's (algorithm's) perf summary.
struct ArmPerf {
  std::string algorithm;
  std::uint64_t slots = 0;
  double wall_ms_total = 0.0;  ///< Sum of the arm's per-run wall clocks.
  double slots_per_sec = 0.0;  ///< slots / wall_ms_total.
  std::uint64_t alloc_invocations = 0;
  std::uint64_t alloc_iterations = 0;
  MetricsSnapshot snapshot;     ///< Full counter/histogram detail.
  std::vector<PhasePerf> phases;  ///< Phases with samples, enum order.
};

/// The whole run's perf report.
struct PerfReport {
  Mode mode = Mode::kOff;
  std::vector<ArmPerf> arms;

  bool empty() const { return arms.empty(); }
};

/// Builds one arm's summary from its registry snapshot.
ArmPerf summarize_arm(const std::string& algorithm,
                      const MetricsSnapshot& snapshot, double wall_ms_total);

/// Serializes a PerfReport as deterministic JSON (schema
/// "cvr-bench-perf-v1"; see docs/observability.md for the field list).
/// `bench` names the producing bench binary; `machine` is a free-form
/// capture-environment note (may be empty).
std::string perf_report_json(const PerfReport& report,
                             const std::string& bench,
                             const std::string& machine = "");

/// Writes perf_report_json() to `path` ("BENCH_<name>.json" by
/// convention). Throws std::runtime_error on I/O failure.
void write_perf_json(const std::string& path, const PerfReport& report,
                     const std::string& bench,
                     const std::string& machine = "");

}  // namespace cvr::telemetry
