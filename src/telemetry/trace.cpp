#include "src/telemetry/trace.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace cvr::telemetry {

namespace {

/// Minimal JSON string escaping — metric/phase/process names are ASCII
/// identifiers, but user-supplied algorithm names ride into process
/// labels, so quotes/backslashes/control bytes must not break the file.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_us(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

void TraceBuffer::set_process_name(std::uint32_t pid, const std::string& name) {
  process_names_[pid] = name;
}

void TraceBuffer::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                  const std::string& name) {
  thread_names_[{pid, tid}] = name;
}

void TraceBuffer::add(TraceEvent event) { events_.push_back(std::move(event)); }

void TraceBuffer::append(const TraceBuffer& other, std::uint32_t pid_offset,
                         const std::string& process_prefix) {
  for (const auto& [pid, name] : other.process_names_) {
    process_names_[pid + pid_offset] =
        process_prefix.empty() ? name : process_prefix + "/" + name;
  }
  for (const auto& [key, name] : other.thread_names_) {
    thread_names_[{key.first + pid_offset, key.second}] = name;
  }
  events_.reserve(events_.size() + other.events_.size());
  for (TraceEvent event : other.events_) {
    event.pid += pid_offset;
    events_.push_back(std::move(event));
  }
}

std::string TraceBuffer::to_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
           json_escape(name) + "\"}}";
  }
  for (const auto& [key, name] : thread_names_) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
           ",\"tid\":" + std::to_string(key.second) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(name) + "\"}}";
  }
  for (const TraceEvent& event : events_) {
    comma();
    out += "{\"ph\":\"X\",\"pid\":" + std::to_string(event.pid) +
           ",\"tid\":" + std::to_string(event.tid) + ",\"name\":\"" +
           json_escape(event.name) + "\",\"cat\":\"phase\",\"ts\":" +
           format_us(event.ts_us) + ",\"dur\":" + format_us(event.dur_us);
    if (event.slot >= 0) {
      out += ",\"args\":{\"slot\":" + std::to_string(event.slot) + "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void TraceBuffer::write(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("TraceBuffer: cannot open '" + path +
                             "' for writing");
  }
  file << to_json();
  if (!file) {
    throw std::runtime_error("TraceBuffer: write to '" + path + "' failed");
  }
}

}  // namespace cvr::telemetry
