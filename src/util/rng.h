// Deterministic random number generation.
//
// Every stochastic component of the library draws from an explicitly
// seeded engine so that simulations and benchmarks are exactly
// reproducible across runs (DESIGN.md Section 5). We implement the
// distributions ourselves (Box-Muller, inversion) instead of using
// <random> distributions, whose output is implementation-defined.
#pragma once

#include <array>
#include <cstdint>

namespace cvr {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
/// Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full state via SplitMix64, as recommended by the authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Equivalent to 2^128 calls to operator(); used to derive independent
  /// per-component streams from one master seed.
  void jump();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Convenience wrapper bundling an engine with deterministic, portable
/// distribution implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Derives an independent child stream (jump + perturb).
  Rng fork();

  Xoshiro256& engine() { return engine_; }

 private:
  Xoshiro256 engine_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cvr
