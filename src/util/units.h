// Units and time-slot conventions shared across the library.
//
// The paper (Section II) unifies content size and network throughput by
// fixing the time-slot duration: "we unify the units of content size
// f_c^R(q) and the network throughput by fixing each time slot duration".
// We follow the same convention:
//
//   * throughput is expressed in Mbps,
//   * a content "size" f_c^R(q) is expressed as the sending rate in Mbps
//     required to deliver it within one slot,
//   * delays are in milliseconds.
//
// The display runs at 66 FPS nominal (Section IV), i.e. a ~15 ms slot.
#pragma once

namespace cvr {

/// Nominal slot duration (seconds). 66 FPS as in Section IV of the paper.
inline constexpr double kSlotSeconds = 1.0 / 66.0;

/// Nominal slot duration in milliseconds.
inline constexpr double kSlotMillis = 1000.0 / 66.0;

/// Target display rate the system is provisioned for (Section II).
inline constexpr double kTargetFps = 60.0;

/// Converts a size in megabits to the Mbps sending rate that delivers it
/// within exactly one slot.
constexpr double megabits_to_slot_rate(double megabits) {
  return megabits / kSlotSeconds;
}

/// Converts a slot-normalised rate (Mbps) back to megabits per slot.
constexpr double slot_rate_to_megabits(double mbps) {
  return mbps * kSlotSeconds;
}

}  // namespace cvr
