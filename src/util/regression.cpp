#include "src/util/regression.h"

#include <cmath>
#include <cstdlib>

namespace cvr {

SlidingLinearRegressor::SlidingLinearRegressor(std::size_t window)
    : window_(window == 0 ? 1 : window) {}

void SlidingLinearRegressor::add(double x, double y) {
  points_.emplace_back(x, y);
  sx_ += x;
  sy_ += y;
  sxx_ += x * x;
  sxy_ += x * y;
  if (points_.size() > window_) {
    auto [ox, oy] = points_.front();
    points_.pop_front();
    sx_ -= ox;
    sy_ -= oy;
    sxx_ -= ox * ox;
    sxy_ -= ox * oy;
  }
}

double SlidingLinearRegressor::slope() const {
  const double n = static_cast<double>(points_.size());
  const double denom = n * sxx_ - sx_ * sx_;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (n * sxy_ - sx_ * sy_) / denom;
}

double SlidingLinearRegressor::intercept() const {
  if (points_.empty()) return 0.0;
  const double n = static_cast<double>(points_.size());
  return (sy_ - slope() * sx_) / n;
}

double SlidingLinearRegressor::predict(double x) const {
  if (points_.empty()) return 0.0;
  if (points_.size() == 1) return points_.back().second;
  return intercept() + slope() * x;
}

PolynomialRegressor::PolynomialRegressor(int degree, std::size_t max_history)
    : degree_(degree < 0 ? 0 : degree),
      max_history_(max_history == 0 ? 1 : max_history) {}

void PolynomialRegressor::add(double x, double y) {
  xs_.push_back(x);
  ys_.push_back(y);
  if (xs_.size() > max_history_) {
    xs_.pop_front();
    ys_.pop_front();
  }
  dirty_ = true;
}

bool PolynomialRegressor::ready() const {
  return xs_.size() >= static_cast<std::size_t>(degree_) + 1;
}

void PolynomialRegressor::fit() {
  if (!dirty_) return;
  dirty_ = false;
  coeffs_.clear();
  if (!ready()) return;
  const std::size_t dim = static_cast<std::size_t>(degree_) + 1;
  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  std::vector<double> ata(dim * dim, 0.0);
  std::vector<double> aty(dim, 0.0);
  for (std::size_t k = 0; k < xs_.size(); ++k) {
    double powers_i = 1.0;
    std::vector<double> pows(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      pows[i] = powers_i;
      powers_i *= xs_[k];
    }
    for (std::size_t i = 0; i < dim; ++i) {
      aty[i] += pows[i] * ys_[k];
      for (std::size_t j = 0; j < dim; ++j) ata[i * dim + j] += pows[i] * pows[j];
    }
  }
  if (solve_linear_system(ata, aty, dim)) {
    coeffs_ = aty;
  }
}

double PolynomialRegressor::predict(double x) {
  fit();
  if (coeffs_.empty()) {
    if (ys_.empty()) return 0.0;
    double total = 0.0;
    for (double y : ys_) total += y;
    return total / static_cast<double>(ys_.size());
  }
  double result = 0.0;
  double power = 1.0;
  for (double c : coeffs_) {
    result += c * power;
    power *= x;
  }
  return result;
}

std::vector<double> PolynomialRegressor::coefficients() {
  fit();
  return coeffs_;
}

bool solve_linear_system(std::vector<double>& a, std::vector<double>& b,
                         std::size_t n) {
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) pivot = row;
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a[col * n + j], a[pivot * n + j]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      for (std::size_t j = col; j < n; ++j) a[row * n + j] -= factor * a[col * n + j];
      b[row] -= factor * b[col];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double total = b[i];
    for (std::size_t j = i + 1; j < n; ++j) total -= a[i * n + j] * b[j];
    b[i] = total / a[i * n + i];
  }
  return true;
}

}  // namespace cvr
