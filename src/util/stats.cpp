#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cvr {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::population_variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStat::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(population_variance()); }

void RunningStat::reset() { *this = RunningStat{}; }

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  sorted_ = false;
  ensure_sorted();
}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double p) const {
  if (samples_.empty()) throw std::logic_error("Cdf::quantile on empty set");
  ensure_sorted();
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) return out;
  if (points < 2 || samples_.size() <= points) {
    out.reserve(samples_.size());
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      out.emplace_back(samples_[i], static_cast<double>(i + 1) /
                                        static_cast<double>(samples_.size()));
    }
    return out;
  }
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(quantile(p), p);
  }
  return out;
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStat rs;
  for (double x : samples) rs.add(x);
  Cdf cdf(samples);
  s.count = samples.size();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.p25 = cdf.quantile(0.25);
  s.median = cdf.quantile(0.5);
  s.p75 = cdf.quantile(0.75);
  s.max = rs.max();
  return s;
}

}  // namespace cvr
