// Least-squares regression utilities.
//
// * SlidingLinearRegressor — per-axis 6-DoF motion prediction
//   (Section V: "We use linear regression to predict the virtual position
//   and head orientation in each axis independently").
// * PolynomialRegressor — delay-vs-rate prediction on the client
//   (Section V: "we use polynomial regression to predict the delay instead
//   of linear regression" because d_n(r) is non-linear).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace cvr {

/// Ordinary least squares y = intercept + slope * x over a sliding window
/// of the most recent `window` observations. O(1) update via running sums.
class SlidingLinearRegressor {
 public:
  explicit SlidingLinearRegressor(std::size_t window);

  void add(double x, double y);

  std::size_t size() const { return points_.size(); }
  bool ready() const { return points_.size() >= 2; }

  double slope() const;
  double intercept() const;

  /// Predicts y at x. With fewer than 2 points, returns the last y seen
  /// (or 0 when empty) — a persistence forecast.
  double predict(double x) const;

 private:
  std::size_t window_;
  std::deque<std::pair<double, double>> points_;
  double sx_ = 0.0, sy_ = 0.0, sxx_ = 0.0, sxy_ = 0.0;
};

/// Polynomial least squares of fixed degree, fit on demand from a bounded
/// history. Solves the normal equations by Gaussian elimination with
/// partial pivoting; degrees used in this library are small (<= 3).
class PolynomialRegressor {
 public:
  PolynomialRegressor(int degree, std::size_t max_history);

  void add(double x, double y);

  bool ready() const;

  /// Fits (if dirty) and evaluates the polynomial at x. Falls back to the
  /// mean of observed y (or 0 when empty) while underdetermined.
  double predict(double x);

  /// Coefficients c0..cd of the current fit (fits first if dirty).
  std::vector<double> coefficients();

  std::size_t size() const { return xs_.size(); }

 private:
  void fit();

  int degree_;
  std::size_t max_history_;
  std::deque<double> xs_, ys_;
  std::vector<double> coeffs_;
  bool dirty_ = true;
};

/// Solves the dense linear system a * x = b in place (Gaussian elimination,
/// partial pivoting). `a` is row-major n x n. Returns false if singular.
bool solve_linear_system(std::vector<double>& a, std::vector<double>& b,
                         std::size_t n);

}  // namespace cvr
