#include "src/util/flags.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace cvr {

namespace {

std::string repr(const std::variant<bool*, std::int64_t*, double*,
                                    std::string*>& binding) {
  std::ostringstream out;
  if (auto* b = std::get_if<bool*>(&binding)) {
    out << (**b ? "true" : "false");
  } else if (auto* i = std::get_if<std::int64_t*>(&binding)) {
    out << **i;
  } else if (auto* d = std::get_if<double*>(&binding)) {
    out << **d;
  } else if (auto* s = std::get_if<std::string*>(&binding)) {
    out << '"' << **s << '"';
  }
  return out.str();
}

const char* type_name(const std::variant<bool*, std::int64_t*, double*,
                                         std::string*>& binding) {
  switch (binding.index()) {
    case 0:
      return "bool";
    case 1:
      return "int";
    case 2:
      return "float";
    default:
      return "string";
  }
}

}  // namespace

void FlagParser::register_flag(const std::string& name, Binding binding,
                               const std::string& help) {
  if (name.empty()) throw std::invalid_argument("flag name empty");
  if (flags_.contains(name)) {
    throw std::invalid_argument("duplicate flag --" + name);
  }
  flags_[name] = Flag{binding, help, repr(binding)};
}

void FlagParser::add(const std::string& name, bool* value,
                     const std::string& help) {
  register_flag(name, value, help);
}
void FlagParser::add(const std::string& name, std::int64_t* value,
                     const std::string& help) {
  register_flag(name, value, help);
}
void FlagParser::add(const std::string& name, double* value,
                     const std::string& help) {
  register_flag(name, value, help);
}
void FlagParser::add(const std::string& name, std::string* value,
                     const std::string& help) {
  register_flag(name, value, help);
}

bool FlagParser::assign(const std::string& name, Flag& flag,
                        const std::string& value) {
  if (auto* b = std::get_if<bool*>(&flag.binding)) {
    if (value == "true" || value == "1") {
      **b = true;
    } else if (value == "false" || value == "0") {
      **b = false;
    } else {
      errors_.push_back("--" + name + ": expected bool, got '" + value + "'");
      return false;
    }
    return true;
  }
  if (auto* i = std::get_if<std::int64_t*>(&flag.binding)) {
    std::int64_t parsed{};
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
      errors_.push_back("--" + name + ": expected int, got '" + value + "'");
      return false;
    }
    **i = parsed;
    return true;
  }
  if (auto* d = std::get_if<double*>(&flag.binding)) {
    double parsed{};
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
      errors_.push_back("--" + name + ": expected float, got '" + value + "'");
      return false;
    }
    **d = parsed;
    return true;
  }
  **std::get_if<std::string*>(&flag.binding) = value;
  return true;
}

bool FlagParser::parse(int argc, const char* const* argv) {
  errors_.clear();
  positionals_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }

    auto it = flags_.find(arg);
    // `--no-foo` negates a registered boolean `foo`.
    if (it == flags_.end() && arg.rfind("no-", 0) == 0) {
      auto base = flags_.find(arg.substr(3));
      if (base != flags_.end() &&
          std::holds_alternative<bool*>(base->second.binding)) {
        if (has_value) {
          errors_.push_back("--" + arg + ": negated flag takes no value");
        } else {
          *std::get<bool*>(base->second.binding) = false;
        }
        continue;
      }
    }
    if (it == flags_.end()) {
      errors_.push_back("unknown flag --" + arg);
      continue;
    }

    if (std::holds_alternative<bool*>(it->second.binding) && !has_value) {
      *std::get<bool*>(it->second.binding) = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        errors_.push_back("--" + arg + ": missing value");
        continue;
      }
      value = argv[++i];
    }
    assign(arg, it->second, value);
  }
  return errors_.empty();
}

std::string FlagParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " <" << type_name(flag.binding)
        << ">  " << flag.help << " (default " << flag.default_repr << ")\n";
  }
  return out.str();
}

}  // namespace cvr
