#include "src/util/thread_pool.h"

namespace cvr {

namespace {
/// Which pool (if any) owns the current thread. Set once per worker at
/// spawn; plain thread_local suffices because a thread belongs to at
/// most one pool for its whole lifetime.
thread_local const ThreadPool* current_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const { return current_pool == this; }

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    throw std::invalid_argument(
        "ThreadPool: threads must be >= 1 (got 0); use "
        "resolve_thread_count() to map 0 to the hardware");
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Graceful shutdown: only exit once the queue is empty, so every
      // submitted task's future becomes ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into the future
  }
}

}  // namespace cvr
