// Streaming and batch statistics.
//
// RunningStat implements Welford's online algorithm [Welford 1962], the
// same recurrence the paper's variance decomposition (Appendix A) is built
// on, so the simulator's bookkeeping matches the math in Section III.
#pragma once

#include <cstddef>
#include <vector>

namespace cvr {

/// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStat& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance (divide by n), matching sigma_n^2(T) in Section II.
  double population_variance() const;

  /// Sample variance (divide by n-1).
  double sample_variance() const;

  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  void reset();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a batch of samples.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);

  std::size_t count() const { return samples_.size(); }

  /// P(X <= x), 0 if empty.
  double at(double x) const;

  /// Inverse CDF; p in [0, 1]. Linear interpolation between order
  /// statistics. Requires at least one sample.
  double quantile(double p) const;

  double median() const { return quantile(0.5); }
  double mean() const;

  /// Evenly spaced (value, cumulative probability) points for plotting;
  /// `points` >= 2. Returns the full sorted sample set if smaller.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Five-number-plus-mean summary used by the bench harnesses.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& samples);

}  // namespace cvr
