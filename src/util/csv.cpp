#include "src/util/csv.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cvr {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool parse_double(std::string_view field, double& out) {
  field = trim(field);
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

std::vector<std::string> split_csv_line(std::string_view line, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(delim, start);
    const std::string_view raw =
        pos == std::string_view::npos
            ? line.substr(start)
            : line.substr(start, pos - start);
    fields.emplace_back(trim(raw));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return fields;
}

CsvTable parse_csv(std::string_view text, char delim) {
  CsvTable table;
  std::size_t line_no = 0;
  std::size_t start = 0;
  bool first_content_line = true;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    auto fields = split_csv_line(line, delim);
    if (first_content_line) {
      first_content_line = false;
      bool all_numeric = true;
      double ignored;
      for (const auto& f : fields) {
        if (!parse_double(f, ignored)) {
          all_numeric = false;
          break;
        }
      }
      if (!all_numeric) {
        table.header = std::move(fields);
        continue;
      }
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& f : fields) {
      double value;
      if (!parse_double(f, value)) {
        throw std::runtime_error("csv: bad numeric field '" + f + "' at line " +
                                 std::to_string(line_no));
      }
      row.push_back(value);
    }
    if (!table.rows.empty() && row.size() != table.rows.front().size()) {
      throw std::runtime_error("csv: ragged row at line " +
                               std::to_string(line_no));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path, char delim) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str(), delim);
}

std::string to_csv(const CsvTable& table, char delim) {
  std::ostringstream out;
  if (!table.header.empty()) {
    for (std::size_t i = 0; i < table.header.size(); ++i) {
      if (i) out << delim;
      out << table.header[i];
    }
    out << '\n';
  }
  out.precision(12);
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << delim;
      out << row[i];
    }
    out << '\n';
  }
  return out.str();
}

void write_csv_file(const std::string& path, const CsvTable& table,
                    char delim) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("csv: cannot open for write " + path);
  out << to_csv(table, delim);
  if (!out) throw std::runtime_error("csv: write failed " + path);
}

}  // namespace cvr
