// Tiny leveled logger. The simulators are single-threaded by design, so
// no synchronisation is needed; the level gate makes disabled logging
// nearly free on hot paths.
#pragma once

#include <sstream>
#include <string>

namespace cvr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Defaults to kWarn
/// so tests and benches stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cvr

#define CVR_LOG(level)                      \
  if (::cvr::log_level() > (level)) {       \
  } else                                    \
    ::cvr::detail::LogLine(level)

#define CVR_DEBUG CVR_LOG(::cvr::LogLevel::kDebug)
#define CVR_INFO CVR_LOG(::cvr::LogLevel::kInfo)
#define CVR_WARN CVR_LOG(::cvr::LogLevel::kWarn)
#define CVR_ERROR CVR_LOG(::cvr::LogLevel::kError)
