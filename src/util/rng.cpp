#include "src/util/rng.h"

#include <cmath>

namespace cvr {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull, 0xA9582618E03FC9AAull,
      0x39ABDC4529B1661Cull};
  std::array<std::uint64_t, 4> t{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        for (int i = 0; i < 4; ++i) t[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = t;
}

double Rng::uniform() {
  // 53-bit mantissa from the top bits, as recommended for xoshiro.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free Lemire-style bounded draw is overkill here; modulo bias
  // is negligible for the ranges we use (span << 2^64), but we keep the
  // multiply-shift reduction for uniformity.
  const unsigned __int128 product =
      static_cast<unsigned __int128>(engine_()) * span;
  return lo + static_cast<std::int64_t>(product >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller. u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() {
  Rng child = *this;
  child.engine_.jump();
  child.has_cached_normal_ = false;
  // Advance the parent so successive forks differ.
  (void)engine_();
  return child;
}

}  // namespace cvr
