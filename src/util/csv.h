// Minimal CSV reader/writer used for trace import/export and for dumping
// benchmark series. Handles comments (#), blank lines, and numeric fields;
// this is deliberately not a general-purpose quoting CSV parser — traces
// in this project are purely numeric tables with an optional header row.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cvr {

struct CsvTable {
  std::vector<std::string> header;       // empty if the file had none
  std::vector<std::vector<double>> rows;
};

/// Splits a line on `delim`, trimming surrounding whitespace per field.
std::vector<std::string> split_csv_line(std::string_view line, char delim = ',');

/// Parses CSV text. If the first non-comment line contains any
/// non-numeric field it is treated as a header. Throws std::runtime_error
/// on a malformed numeric field in a data row or on ragged rows.
CsvTable parse_csv(std::string_view text, char delim = ',');

/// Reads and parses a CSV file. Throws std::runtime_error if unreadable.
CsvTable read_csv_file(const std::string& path, char delim = ',');

/// Serialises a table (header optional) to CSV text.
std::string to_csv(const CsvTable& table, char delim = ',');

/// Writes a table to a file. Throws std::runtime_error on I/O failure.
void write_csv_file(const std::string& path, const CsvTable& table,
                    char delim = ',');

}  // namespace cvr
