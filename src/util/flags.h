// Minimal command-line flag parsing for the example/CLI binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--name` /
// `--no-name`. Unknown flags and malformed values are collected as
// errors rather than aborting, so callers can print usage and exit
// cleanly. Deliberately tiny — no subcommands, no repeated flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace cvr {

class FlagParser {
 public:
  /// Registers a flag bound to caller-owned storage. The bound variable
  /// keeps its current value as the default. Names must be unique and
  /// non-empty; registering a duplicate throws std::invalid_argument.
  void add(const std::string& name, bool* value, const std::string& help);
  void add(const std::string& name, std::int64_t* value, const std::string& help);
  void add(const std::string& name, double* value, const std::string& help);
  void add(const std::string& name, std::string* value, const std::string& help);

  /// Parses argv (skipping argv[0]). Returns true iff no errors.
  /// Positional (non-flag) arguments are collected into positionals().
  bool parse(int argc, const char* const* argv);

  const std::vector<std::string>& errors() const { return errors_; }
  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Usage text listing every flag, its type, default, and help string.
  std::string usage(const std::string& program) const;

 private:
  using Binding = std::variant<bool*, std::int64_t*, double*, std::string*>;

  struct Flag {
    Binding binding;
    std::string help;
    std::string default_repr;
  };

  void register_flag(const std::string& name, Binding binding,
                     const std::string& help);
  bool assign(const std::string& name, Flag& flag, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> errors_;
  std::vector<std::string> positionals_;
};

}  // namespace cvr
