// Fixed-size thread pool for embarrassingly parallel experiment cells.
//
// Deliberately work-stealing-free: one FIFO queue, a fixed set of
// workers, and futures returned in submission order. Determinism is the
// caller's contract — tasks must derive all randomness from their own
// inputs (seed, run index), never from execution order — and the pool
// keeps its side by never reordering, dropping, or duplicating tasks.
// Exceptions thrown by a task are captured and rethrown from the
// corresponding future's get(). Destruction is graceful: every task
// already submitted runs to completion before the workers join
// (DESIGN.md Section 5: no partially executed experiment cells).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace cvr {

/// Resolves a user-facing thread-count knob: 0 means "all hardware
/// threads" (std::thread::hardware_concurrency(), at least 1); any
/// other value is taken verbatim.
std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers. Throws std::invalid_argument on
  /// 0 — call resolve_thread_count() first to map 0 to the hardware.
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (pending tasks still run) and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// True iff the calling thread is one of this pool's workers.
  /// Nesting policy (docs/fleet.md): submit() from inside a worker of
  /// the SAME pool runs the task inline instead of enqueueing it —
  /// with one FIFO queue, a worker that blocked on a future for a task
  /// queued behind its own would deadlock the moment every worker does
  /// it (the fleet's outer per-server fan-out composing with the
  /// allocator's inner per-lane fan-out on one shared pool). Inline
  /// execution keeps the future contract (value or exception captured)
  /// and, because both fan-outs only ever partition disjoint state,
  /// cannot change any result bit.
  bool on_worker_thread() const;

  /// Enqueues `fn` and returns a future for its result. Tasks start in
  /// FIFO order; a task's exception surfaces from future.get(). Called
  /// from one of this pool's own workers, the task instead runs inline
  /// before submit() returns (see on_worker_thread()).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    // std::function requires copyable targets, so the move-only
    // packaged_task rides behind a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    if (on_worker_thread()) {
      (*task)();  // nested submit: run inline, never self-deadlock
      return future;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace cvr
